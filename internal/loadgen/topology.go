package loadgen

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/acl"
	"proxykit/internal/audit"
	"proxykit/internal/authz"
	"proxykit/internal/endserver"
	"proxykit/internal/gateway"
	"proxykit/internal/group"
	"proxykit/internal/kerberos"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/statefile"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

// Realm is the topology's Kerberos-style realm name.
const Realm = "LOAD.EXAMPLE.ORG"

// sim is one simulated principal with everything pre-provisioned at
// setup time so the measured operations are steady-state: an identity,
// a funded account, a cascaded authorization proxy for the end-server
// object, sealed-envelope service clients, and a gateway bearer token.
type sim struct {
	ident    *pubkey.Identity
	acct     string
	acct2    string // payor account at the second bank, "" without one
	password string // KDC password, "" without a KDC
	authz    *proxy.Proxy
	end      *svc.EndClient
	bank     *svc.AcctClient
	token    string
}

// Options parameterizes NewTopologyWith. The zero value plus Principals
// reproduces NewTopology.
type Options struct {
	// Principals is how many simulated principals to provision; <= 0
	// means 1.
	Principals int
	// MintPerPrincipal is the dollars minted into each principal's
	// account (and, with SecondBank, into each payor account there);
	// <= 0 defaults to 1_000_000_000.
	MintPerPrincipal int64
	// JournalDir, when non-empty, attaches hash-chained file journals
	// to the banks (bank1.jsonl, bank2.jsonl) so an external verifier
	// can re-walk them while the workload runs.
	JournalDir string
	// SecondBank adds a drawee bank in a second realm with one funded
	// payor account per principal ("c<i>"), peered with the main bank
	// both ways — the Fig. 5 cross-bank clearing topology.
	SecondBank bool
	// ChurnGroups provisions this many churn groups ("churn-<w>"), an
	// authz rule per group for /churn/doc, and the matching end-server
	// ACL, enabling the group/ACL churn actor.
	ChurnGroups int
	// KDC stands up a key distribution center over TCP with every
	// principal password-registered, enabling the login actor.
	KDC bool
}

// SecondRealm is the drawee bank's realm when Options.SecondBank is set.
const SecondRealm = "LOAD2.EXAMPLE.ORG"

// Topology is a full in-process deployment — group, authz, end-server,
// and accounting daemons over real TCP plus the HTTP gateway — with N
// simulated principals provisioned against it. It is the fixture
// `cmd/loadgen`, the loadgen-smoke CI target, and the soak world drive.
type Topology struct {
	StateDir string

	GatewayURL string

	opts     Options
	bank     *accounting.Server
	bank2    *accounting.Server
	groupSrv *group.Server
	authzSrv *authz.Server
	kdc      *kerberos.KDC
	kdcC     *svc.KDCClient
	groupC   *transport.TCPClient
	authzC   *transport.TCPClient
	fileID   principal.ID
	sims     []*sim
	churnMu  []sync.Mutex
	minted   map[string]int64
	journals map[string]*audit.Journal
	httpc    *http.Client
	closers  []func()
}

// Close tears down servers, clients, and the state directory.
func (t *Topology) Close() {
	for i := len(t.closers) - 1; i >= 0; i-- {
		t.closers[i]()
	}
}

// NewTopology stands up the deployment and provisions n principals:
// every principal is in the "staff" group, staff may read /shared/doc
// on the end-server, each principal owns a funded account, and each
// holds a delegate authorization proxy acquired through the real
// group-server → authz-server cascade.
func NewTopology(n int) (*Topology, error) {
	return NewTopologyWith(Options{Principals: n})
}

// NewTopologyWith stands up the deployment per opts.
func NewTopologyWith(opts Options) (*Topology, error) {
	if opts.Principals <= 0 {
		opts.Principals = 1
	}
	if opts.MintPerPrincipal <= 0 {
		opts.MintPerPrincipal = 1_000_000_000
	}
	state, err := os.MkdirTemp("", "loadgen-state-")
	if err != nil {
		return nil, err
	}
	t := &Topology{
		StateDir: state,
		opts:     opts,
		minted:   map[string]int64{},
		journals: map[string]*audit.Journal{},
	}
	t.closers = append(t.closers, func() { _ = os.RemoveAll(state) })
	if err := t.build(opts.Principals); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

func (t *Topology) build(n int) error {
	ids := map[string]*pubkey.Identity{}
	for _, name := range []string{"groups", "authz", "file/srv1", "bank"} {
		ident, err := statefile.CreateIdentity(t.StateDir, principal.New(name, Realm))
		if err != nil {
			return err
		}
		ids[name] = ident
	}
	t.fileID = ids["file/srv1"].ID
	resolve := statefile.DynamicResolver(t.StateDir)

	addrs := map[string]string{}
	serve := func(name string, mux *transport.Mux) error {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := transport.NewTCPServer(l, mux)
		t.closers = append(t.closers, func() { _ = srv.Close() })
		addrs[name] = srv.Addr().String()
		return nil
	}
	dial := func(name string) (*transport.TCPClient, error) {
		c, err := transport.DialTCP(addrs[name], 5*time.Second)
		if err != nil {
			return nil, err
		}
		t.closers = append(t.closers, func() { _ = c.Close() })
		return c, nil
	}

	t.groupSrv = group.New(ids["groups"], nil)
	t.authzSrv = authz.New(ids["authz"], nil)
	t.authzSrv.AddRule(authz.Rule{
		EndServer: t.fileID,
		Object:    "/shared/doc",
		Subject:   acl.Subject{Groups: []principal.Global{t.groupSrv.Global("staff")}},
		Ops:       []string{"read"},
	})
	fileSrv := endserver.New(t.fileID, &proxy.VerifyEnv{ResolveIdentity: resolve}, nil)
	fileSrv.SetACL("/shared/doc", acl.New(acl.PrincipalEntry(ids["authz"].ID, "read")))
	t.bank = accounting.NewServer(ids["bank"], resolve, nil)
	if err := t.attachJournal(t.bank, "bank1"); err != nil {
		return err
	}

	// The churn world: groups whose membership the churn actor toggles,
	// each entitling its members to read /churn/doc through the same
	// group -> authz -> end-server cascade the staff group uses.
	if t.opts.ChurnGroups > 0 {
		for w := 0; w < t.opts.ChurnGroups; w++ {
			g := churnGroupName(w)
			t.groupSrv.AddGroup(g)
			t.authzSrv.AddRule(authz.Rule{
				EndServer: t.fileID,
				Object:    "/churn/doc",
				Subject:   acl.Subject{Groups: []principal.Global{t.groupSrv.Global(g)}},
				Ops:       []string{"read"},
			})
		}
		fileSrv.SetACL("/churn/doc", acl.New(acl.PrincipalEntry(ids["authz"].ID, "read")))
	}

	// The second realm's drawee bank, peered both ways for clearing.
	if t.opts.SecondBank {
		ident2, err := statefile.CreateIdentity(t.StateDir, principal.New("bank2", SecondRealm))
		if err != nil {
			return err
		}
		t.bank2 = accounting.NewServer(ident2, resolve, nil)
		t.bank.AddPeer(t.bank2)
		t.bank2.AddPeer(t.bank)
		if err := t.attachJournal(t.bank2, "bank2"); err != nil {
			return err
		}
	}

	if t.opts.KDC {
		kdc, err := kerberos.NewKDC(Realm, nil)
		if err != nil {
			return err
		}
		t.kdc = kdc
		if _, err := kdc.RegisterWithPassword(t.fileID, "srv1-service-key"); err != nil {
			return err
		}
	}

	// Provision principals before the servers take traffic.
	mapping := &gateway.MappingConfig{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%d", i)
		ident, err := statefile.CreateIdentity(t.StateDir, principal.New(name, Realm))
		if err != nil {
			return err
		}
		t.groupSrv.AddMember("staff", ident.ID)
		if err := t.bank.CreateAccount(name, ident.ID); err != nil {
			return err
		}
		if err := t.bank.Mint(name, "dollars", t.opts.MintPerPrincipal); err != nil {
			return err
		}
		t.minted["dollars"] += t.opts.MintPerPrincipal
		s := &sim{ident: ident, acct: name}
		if t.bank2 != nil {
			s.acct2 = fmt.Sprintf("c%d", i)
			if err := t.bank2.CreateAccount(s.acct2, ident.ID); err != nil {
				return err
			}
			if err := t.bank2.Mint(s.acct2, "dollars", t.opts.MintPerPrincipal); err != nil {
				return err
			}
			t.minted["dollars"] += t.opts.MintPerPrincipal
		}
		if t.kdc != nil {
			s.password = "pw-" + name
			if _, err := t.kdc.RegisterWithPassword(ident.ID, s.password); err != nil {
				return err
			}
		}
		s.token = fmt.Sprintf("tok-%s-%s", name, ident.Public().KeyID())
		mapping.Tokens = append(mapping.Tokens, gateway.TokenEntry{
			Token:     s.token,
			Subject:   name,
			Principal: name + "@" + Realm,
			Groups:    []string{"staff"},
		})
		t.sims = append(t.sims, s)
	}
	t.churnMu = make([]sync.Mutex, len(t.sims))

	if err := serve("groups", svc.NewGroupService(t.groupSrv, resolve, nil).Mux()); err != nil {
		return err
	}
	if err := serve("authz", svc.NewAuthzService(t.authzSrv, resolve, nil).Mux()); err != nil {
		return err
	}
	if err := serve("file", svc.NewEndService(fileSrv, resolve, nil).Mux()); err != nil {
		return err
	}
	if err := serve("bank", svc.NewAcctService(t.bank, resolve, nil).Mux()); err != nil {
		return err
	}
	if t.kdc != nil {
		if err := serve("kdc", svc.NewKDCService(t.kdc).Mux()); err != nil {
			return err
		}
	}

	groupC, err := dial("groups")
	if err != nil {
		return err
	}
	authzC, err := dial("authz")
	if err != nil {
		return err
	}
	fileC, err := dial("file")
	if err != nil {
		return err
	}
	bankC, err := dial("bank")
	if err != nil {
		return err
	}
	t.groupC, t.authzC = groupC, authzC
	if t.kdc != nil {
		kdcC, err := dial("kdc")
		if err != nil {
			return err
		}
		t.kdcC = svc.NewKDCClient(kdcC)
	}

	// Each principal walks the real cascade once at setup: group proxy
	// from the group server, then a delegate authorization proxy from
	// the authz server presenting it. The authorize op then presents
	// that proxy per request — the paper's steady state, where grants
	// are amortized over many end-server requests.
	for _, s := range t.sims {
		gp, err := svc.NewGroupClient(groupC, s.ident, nil).Grant(svc.GroupGrantParams{
			Groups: []string{"staff"}, Lifetime: time.Hour, Delegate: true,
		})
		if err != nil {
			return fmt.Errorf("provision %s: group grant: %w", s.acct, err)
		}
		ap, err := svc.NewAuthzClient(authzC, s.ident, nil).Grant(svc.GrantParams{
			EndServer: t.fileID, Lifetime: time.Hour, Delegate: true,
			GroupProxies: []*proxy.Presentation{gp.PresentDelegate()},
		})
		if err != nil {
			return fmt.Errorf("provision %s: authz grant: %w", s.acct, err)
		}
		s.authz = ap
		s.end = svc.NewEndClient(fileC, s.ident, nil)
		s.bank = svc.NewAcctClient(bankC, s.ident, nil)
	}

	// The HTTP edge: a real gatewayd core on a real listener.
	gw, err := gateway.New(gateway.Options{
		StateDir:    t.StateDir,
		ID:          principal.New("gateway", Realm),
		Mapping:     mapping,
		AuthzClient: authzC,
		GroupClient: groupC,
		AcctClient:  bankC,
		EndClient:   fileC,
		EndServerID: t.fileID,
		BankID:      ids["bank"].ID,
	})
	if err != nil {
		return err
	}
	t.closers = append(t.closers, gw.Close)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	web := &http.Server{Handler: gw.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = web.Serve(l) }()
	t.closers = append(t.closers, func() { _ = web.Close() })
	t.GatewayURL = "http://" + l.Addr().String()
	t.httpc = &http.Client{Timeout: 30 * time.Second}
	return nil
}

// attachJournal wires a hash-chained file journal under a bank when
// Options.JournalDir is set.
func (t *Topology) attachJournal(bank *accounting.Server, name string) error {
	if t.opts.JournalDir == "" {
		return nil
	}
	j, err := audit.New(audit.Options{Path: t.JournalPath(name), Tail: 16})
	if err != nil {
		return err
	}
	t.closers = append(t.closers, func() { _ = j.Close() })
	t.journals[name] = j
	bank.SetJournal(j)
	return nil
}

func churnGroupName(w int) string { return fmt.Sprintf("churn-%d", w) }

// ---- accessors for the soak world and external verifiers ----

// Bank returns the main accounting server (the collector in Fig. 5).
func (t *Topology) Bank() *accounting.Server { return t.bank }

// SecondBank returns the drawee bank, nil unless Options.SecondBank.
func (t *Topology) SecondBank() *accounting.Server { return t.bank2 }

// GroupServer returns the group-membership server.
func (t *Topology) GroupServer() *group.Server { return t.groupSrv }

// EndServerID returns the end-server's principal identity.
func (t *Topology) EndServerID() principal.ID { return t.fileID }

// SimCount returns how many principals are provisioned.
func (t *Topology) SimCount() int { return len(t.sims) }

// SimIdentity returns principal i's identity.
func (t *Topology) SimIdentity(i int) *pubkey.Identity { return t.sims[i%len(t.sims)].ident }

// SimAccount returns principal i's account name at the main bank.
func (t *Topology) SimAccount(i int) string { return t.sims[i%len(t.sims)].acct }

// JournalPath returns the file path of a bank's journal ("bank1" or
// "bank2"); meaningful only with Options.JournalDir set.
func (t *Topology) JournalPath(name string) string {
	return filepath.Join(t.opts.JournalDir, name+".jsonl")
}

// MintedSupply returns the total money provisioned into the topology,
// per currency, across all banks. Nothing else creates money, so at
// quiesce the per-currency sums over both banks' customer accounts must
// equal it exactly.
func (t *Topology) MintedSupply() map[string]int64 {
	out := make(map[string]int64, len(t.minted))
	for cur, v := range t.minted {
		out[cur] = v
	}
	return out
}

// StateDigest hashes every account balance on every bank, in sorted
// order: two topologies that executed the same op schedule digest
// identically, regardless of interleaving.
func (t *Topology) StateDigest() string {
	h := sha256.New()
	banks := []*accounting.Server{t.bank}
	if t.bank2 != nil {
		banks = append(banks, t.bank2)
	}
	for bi, b := range banks {
		balances := b.AccountBalances()
		names := make([]string, 0, len(balances))
		for name := range balances {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			curs := make([]string, 0, len(balances[name]))
			for cur := range balances[name] {
				curs = append(curs, cur)
			}
			sort.Strings(curs)
			for _, cur := range curs {
				fmt.Fprintf(h, "%d/%s/%s=%d\n", bi, name, cur, balances[name][cur])
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Ops returns the four workload operations over this topology. The
// principal index selects which sim acts.
func (t *Topology) Ops() []Op {
	return []Op{
		{Name: "authorize", Do: t.opAuthorize},
		{Name: "transfer", Do: t.opTransfer},
		{Name: "deposit", Do: t.opDeposit},
		{Name: "gateway", Do: t.opGateway},
	}
}

// opAuthorize presents the principal's cascaded authorization proxy to
// the end-server (method end.request).
func (t *Topology) opAuthorize(p int) error {
	return t.Authorize(p)
}

// opTransfer moves one dollar to the next principal's account (method
// acct.transfer).
func (t *Topology) opTransfer(p int) error {
	return t.Transfer(p, 1)
}

// opDeposit writes a check to the next principal, who endorses and
// deposits it (method acct.depositCheck). The check write and
// endorsement are client-side crypto; only the deposit RPC is the
// measured server interaction, but the full §7.7 instrument flow runs.
func (t *Topology) opDeposit(p int) error {
	return t.Deposit(p, 1)
}

// opGateway authorizes through the HTTP edge with the principal's
// bearer token (route "POST /v1/authorize" → end.request downstream).
func (t *Topology) opGateway(p int) error {
	s := t.sims[p%len(t.sims)]
	req, err := http.NewRequest("POST", t.GatewayURL+"/v1/authorize",
		bytes.NewReader([]byte(`{"object":"/shared/doc","op":"read"}`)))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+s.token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gateway authorize: %s", resp.Status)
	}
	return nil
}
