// Package loadgen is the standing measurement harness: an open-loop
// load generator that drives a mixed authorize/transfer/deposit/
// gateway-HTTP workload against a proxykit topology at a fixed arrival
// rate, records full client-side latency distributions per operation,
// and reports them alongside the server-side SLO engine's compliance
// verdicts (internal/obs). Open-loop means arrivals are scheduled by
// the clock, not by completions: a slow server does not slow the
// generator down, so queueing delay shows up in the measured latencies
// instead of being hidden by coordinated omission.
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"proxykit/internal/obs"
)

// Op is one workload operation the generator can issue. Do is called
// once per arrival with the index of the simulated principal acting;
// it must be safe for concurrent use.
type Op struct {
	Name string
	Do   func(principal int) error
}

// Config parameterizes a run.
type Config struct {
	// Rate is the offered arrival rate in operations per second.
	Rate float64
	// Duration is how long arrivals are generated. Zero is allowed when
	// MaxOps is set.
	Duration time.Duration
	// MaxOps, when positive, caps the number of arrivals generated: the
	// run stops after exactly MaxOps operations even if Duration has not
	// elapsed (and runs to MaxOps if Duration is zero). A fixed op count
	// plus a fixed seed makes the whole schedule — and therefore the
	// final topology state — deterministic, which duration-bounded runs
	// are not.
	MaxOps int
	// Principals is how many simulated principals the workload cycles
	// through.
	Principals int
	// Mix maps op name to relative weight (see ParseMix). Ops absent
	// from the mix are not issued; an empty mix weights every op
	// equally.
	Mix map[string]float64
	// Seed drives principal and op selection (reproducible workloads).
	Seed int64
	// SLO is the latency-objective spec armed on obs.DefaultSLO before
	// the run, so the in-process servers' observations are judged
	// (see OBSERVABILITY.md for the grammar).
	SLO string
}

// ParseMix parses "authorize=0.4,transfer=0.3,deposit=0.2,gateway=0.1"
// into a weight map. Weights are relative; they need not sum to 1.
func ParseMix(s string) (map[string]float64, error) {
	mix := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: mix %q: want name=weight", part)
		}
		w, err := strconv.ParseFloat(wstr, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("loadgen: mix %q: bad weight", part)
		}
		mix[strings.TrimSpace(name)] = w
	}
	return mix, nil
}

// OpReport is one operation's client-observed latency distribution.
type OpReport struct {
	Count  int   `json:"count"`
	Errors int   `json:"errors"`
	P50Ns  int64 `json:"p50Ns"`
	P99Ns  int64 `json:"p99Ns"`
	P999Ns int64 `json:"p999Ns"`
	MaxNs  int64 `json:"maxNs"`
	MeanNs int64 `json:"meanNs"`
}

// Report is the run summary emitted as BENCH_PR7.json.
type Report struct {
	// Config echoes the run parameters.
	Config struct {
		Rate       float64 `json:"ratePerSec"`
		DurationMs int64   `json:"durationMs"`
		Principals int     `json:"principals"`
		Mix        string  `json:"mix"`
		Seed       int64   `json:"seed"`
		SLO        string  `json:"slo"`
	} `json:"config"`
	// Offered and Completed count scheduled vs finished arrivals;
	// AchievedRatePerSec is completions over the measured window.
	Offered            int     `json:"offered"`
	Completed          int     `json:"completed"`
	AchievedRatePerSec float64 `json:"achievedRatePerSec"`
	// Ops holds per-operation latency distributions, client-observed.
	Ops map[string]*OpReport `json:"ops"`
	// SLO is the server-side compliance report (in-process topology:
	// the TCP servers share this process's obs.DefaultSLO engine).
	SLO []obs.ObjectiveReport `json:"slo"`
}

// sampler accumulates one op's latency samples.
type sampler struct {
	mu      sync.Mutex
	samples []time.Duration
	errors  int
}

func (s *sampler) add(d time.Duration, err error) {
	s.mu.Lock()
	s.samples = append(s.samples, d)
	if err != nil {
		s.errors++
	}
	s.mu.Unlock()
}

// report sorts the samples and extracts the distribution.
func (s *sampler) report() *OpReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &OpReport{Count: len(s.samples), Errors: s.errors}
	if len(s.samples) == 0 {
		return r
	}
	sorted := make([]time.Duration, len(s.samples))
	copy(sorted, s.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	r.P50Ns = int64(quantile(sorted, 0.50))
	r.P99Ns = int64(quantile(sorted, 0.99))
	r.P999Ns = int64(quantile(sorted, 0.999))
	r.MaxNs = int64(sorted[len(sorted)-1])
	r.MeanNs = int64(sum) / int64(len(sorted))
	return r
}

// quantile returns the q-th quantile of sorted samples (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Run arms the SLO engine and generates the open-loop workload:
// arrivals at fixed interarrival time 1/Rate for Duration, each
// dispatched to its own goroutine immediately (never waiting for
// earlier operations), then waits for in-flight operations to drain.
func Run(cfg Config, ops []Op) (*Report, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be positive")
	}
	if cfg.Duration <= 0 && cfg.MaxOps <= 0 {
		return nil, fmt.Errorf("loadgen: duration or max ops must be positive")
	}
	if cfg.Principals <= 0 {
		cfg.Principals = 1
	}
	objs, err := obs.ParseSLO(cfg.SLO)
	if err != nil {
		return nil, err
	}
	obs.DefaultSLO.Configure(objs)

	// Resolve the mix into a cumulative weight table over ops.
	var active []Op
	var weights []float64
	totalW := 0.0
	for _, op := range ops {
		w, ok := cfg.Mix[op.Name]
		if len(cfg.Mix) == 0 {
			w, ok = 1, true
		}
		if !ok || w == 0 {
			continue
		}
		active = append(active, op)
		totalW += w
		weights = append(weights, totalW)
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("loadgen: mix selects no ops (have %v)", opNames(ops))
	}
	for name := range cfg.Mix {
		if !hasOp(ops, name) {
			return nil, fmt.Errorf("loadgen: mix names unknown op %q (have %v)", name, opNames(ops))
		}
	}

	samplers := map[string]*sampler{}
	for _, op := range active {
		samplers[op.Name] = &sampler{}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var rngMu sync.Mutex
	pick := func() (Op, int) {
		rngMu.Lock()
		defer rngMu.Unlock()
		x := rng.Float64() * totalW
		p := rng.Intn(cfg.Principals)
		for i, w := range weights {
			if x < w {
				return active[i], p
			}
		}
		return active[len(active)-1], p
	}

	interarrival := time.Duration(float64(time.Second) / cfg.Rate)
	begin := time.Now()
	deadline := begin.Add(cfg.Duration)
	var wg sync.WaitGroup
	offered := 0
	for next := begin; cfg.Duration <= 0 || next.Before(deadline); next = next.Add(interarrival) {
		if cfg.MaxOps > 0 && offered >= cfg.MaxOps {
			break
		}
		// Open loop: sleep until the scheduled arrival, never until
		// the previous operation completed.
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		op, p := pick()
		offered++
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			err := op.Do(p)
			samplers[op.Name].add(time.Since(start), err)
		}()
	}
	wg.Wait()
	elapsed := time.Since(begin)

	rep := &Report{Ops: map[string]*OpReport{}, Offered: offered}
	rep.Config.Rate = cfg.Rate
	rep.Config.DurationMs = cfg.Duration.Milliseconds()
	rep.Config.Principals = cfg.Principals
	rep.Config.Mix = mixString(cfg.Mix)
	rep.Config.Seed = cfg.Seed
	rep.Config.SLO = cfg.SLO
	for name, s := range samplers {
		r := s.report()
		rep.Ops[name] = r
		rep.Completed += r.Count
	}
	if elapsed > 0 {
		rep.AchievedRatePerSec = float64(rep.Completed) / elapsed.Seconds()
	}
	rep.SLO = obs.DefaultSLO.Report()
	return rep, nil
}

func hasOp(ops []Op, name string) bool {
	for _, op := range ops {
		if op.Name == name {
			return true
		}
	}
	return false
}

func opNames(ops []Op) []string {
	names := make([]string, len(ops))
	for i, op := range ops {
		names[i] = op.Name
	}
	return names
}

// mixString renders a mix map deterministically (sorted by name).
func mixString(mix map[string]float64) string {
	names := make([]string, 0, len(mix))
	for name := range mix {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%g", name, mix[name])
	}
	return strings.Join(parts, ",")
}
