package experiments

import (
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/authz"
	"proxykit/internal/baseline/registry"
	"proxykit/internal/endserver"
	"proxykit/internal/group"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/restrict"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

// E2FullStack drives one composed request through every security
// service over the wire — the Fig. 2 layering exercised end to end.
func E2FullStack() (*Table, error) {
	w, err := newWorld("bob", "groups", "authz", "file")
	if err != nil {
		return nil, err
	}
	groupSrv := group.New(w.ident("groups"), w.clk)
	groupSrv.AddMember("staff", w.id("bob"))
	staff := groupSrv.Global("staff")

	authzSrv := authz.New(w.ident("authz"), w.clk)
	authzSrv.AddRule(authz.Rule{
		EndServer: w.id("file"),
		Object:    "/shared/doc",
		Subject:   acl.Subject{Groups: []principal.Global{staff}},
		Ops:       []string{"read"},
	})
	endSrv := endserver.New(w.id("file"), w.env("file"), w.clk)
	endSrv.SetACL("/shared/doc", acl.New(acl.PrincipalEntry(authzSrv.ID, "read")))

	net := transport.NewNetwork()
	resolve := w.dir.Resolver()
	net.Register("groups", svc.NewGroupService(groupSrv, resolve, w.clk).Mux())
	net.Register("authz", svc.NewAuthzService(authzSrv, resolve, w.clk).Mux())
	net.Register("file", svc.NewEndService(endSrv, resolve, w.clk).Mux())

	t := &Table{
		ID:      "E2",
		Title:   "full stack: authentication -> group -> authorization -> end-server",
		Paper:   "Fig. 2 (relationship of security services)",
		Headers: []string{"phase", "round_trips", "bytes"},
		Notes:   "after acquisition, repeated end-server requests touch no other service",
	}
	record := func(phase string) {
		msgs, rts, bytes := net.Stats().Snapshot()
		_ = msgs
		t.Rows = append(t.Rows, []string{phase, u64(rts), u64(bytes)})
	}

	gc := svc.NewGroupClient(net.MustDial("groups"), w.ident("bob"), w.clk)
	gp, err := gc.Grant(svc.GroupGrantParams{Groups: []string{"staff"}, Lifetime: time.Hour, Delegate: true})
	if err != nil {
		return nil, err
	}
	record("group proxy acquired")

	ac := svc.NewAuthzClient(net.MustDial("authz"), w.ident("bob"), w.clk)
	ap, err := ac.Grant(svc.GrantParams{
		EndServer:    w.id("file"),
		Lifetime:     time.Hour,
		Delegate:     true,
		GroupProxies: []*proxy.Presentation{gp.PresentDelegate()},
	})
	if err != nil {
		return nil, err
	}
	record("authorization proxy acquired")

	ec := svc.NewEndClient(net.MustDial("file"), w.ident("bob"), w.clk)
	if _, err := ec.Request(svc.RequestParams{
		Object: "/shared/doc", Op: "read",
		Proxies: []*proxy.Presentation{ap.PresentDelegate()},
	}); err != nil {
		return nil, err
	}
	record("first request served")

	for i := 0; i < 9; i++ {
		if _, err := ec.Request(svc.RequestParams{
			Object: "/shared/doc", Op: "read",
			Proxies: []*proxy.Presentation{ap.PresentDelegate()},
		}); err != nil {
			return nil, err
		}
	}
	record("ten requests served")
	return t, nil
}

// E3Authorization reproduces Fig. 3's design argument: the
// authorization-server protocol front-loads one round trip, after which
// end-server decisions are local; the Grapevine-style baseline pays a
// registration-server round trip on every decision.
func E3Authorization() (*Table, error) {
	const requests = 100
	const oneWay = 5 * time.Millisecond

	w, err := newWorld("alice", "authz", "file")
	if err != nil {
		return nil, err
	}
	resolve := w.dir.Resolver()

	t := &Table{
		ID:      "E3",
		Title:   "authorization decision traffic over 100 requests",
		Paper:   "Fig. 3 (authorization protocol), §5 Grapevine comparison",
		Headers: []string{"approach", "setup_rts", "authz_rts_per_req", "total_rts", "net_ms@5ms"},
		Notes:   "authz_rts_per_req counts traffic to authorization/registration services, not the request itself",
	}

	// Approach 1: direct ACL at the end-server (local autonomy).
	{
		endSrv := endserver.New(w.id("file"), w.env("file"), w.clk)
		endSrv.SetACL("/doc", acl.New(acl.PrincipalEntry(w.id("alice"), "read")))
		net := transport.NewNetwork()
		net.Register("file", svc.NewEndService(endSrv, resolve, w.clk).Mux())
		ec := svc.NewEndClient(net.MustDial("file"), w.ident("alice"), w.clk)
		for i := 0; i < requests; i++ {
			if _, err := ec.Request(svc.RequestParams{Object: "/doc", Op: "read"}); err != nil {
				return nil, err
			}
		}
		_, rts, _ := net.Stats().Snapshot()
		t.Rows = append(t.Rows, []string{
			"direct ACL", "0", "0", u64(rts), ms(time.Duration(rts) * 2 * oneWay),
		})
	}

	// Approach 2: authorization-server proxy, acquired once.
	{
		authzSrv := authz.New(w.ident("authz"), w.clk)
		authzSrv.AddRule(authz.Rule{
			EndServer: w.id("file"),
			Object:    "/doc",
			Subject:   acl.Subject{Principals: principal.NewCompound(w.id("alice"))},
			Ops:       []string{"read"},
		})
		endSrv := endserver.New(w.id("file"), w.env("file"), w.clk)
		endSrv.SetACL("/doc", acl.New(acl.PrincipalEntry(authzSrv.ID, "read")))
		net := transport.NewNetwork()
		net.Register("authz", svc.NewAuthzService(authzSrv, resolve, w.clk).Mux())
		net.Register("file", svc.NewEndService(endSrv, resolve, w.clk).Mux())

		ac := svc.NewAuthzClient(net.MustDial("authz"), w.ident("alice"), w.clk)
		ap, err := ac.Grant(svc.GrantParams{EndServer: w.id("file"), Lifetime: time.Hour, Delegate: true})
		if err != nil {
			return nil, err
		}
		_, setupRTs, _ := net.Stats().Snapshot()

		ec := svc.NewEndClient(net.MustDial("file"), w.ident("alice"), w.clk)
		for i := 0; i < requests; i++ {
			if _, err := ec.Request(svc.RequestParams{
				Object: "/doc", Op: "read",
				Proxies: []*proxy.Presentation{ap.PresentDelegate()},
			}); err != nil {
				return nil, err
			}
		}
		_, rts, _ := net.Stats().Snapshot()
		t.Rows = append(t.Rows, []string{
			"authz-server proxy", u64(setupRTs), "0", u64(rts), ms(time.Duration(rts) * 2 * oneWay),
		})
	}

	// Approach 3: Grapevine-style registration lookups, one per
	// decision, plus the client request itself.
	{
		reg := registry.NewServer()
		reg.AddMember("readers", w.id("alice"))
		net := transport.NewNetwork()
		net.Register("registry", reg.Mux())
		es := registry.NewEndServer("readers", net.MustDial("registry"))
		for i := 0; i < requests; i++ {
			if err := es.Authorize(w.id("alice")); err != nil {
				return nil, err
			}
		}
		_, regRTs, _ := net.Stats().Snapshot()
		total := regRTs + requests // registry lookups plus the client->server requests
		t.Rows = append(t.Rows, []string{
			"registry baseline", "0", "1", u64(total), ms(time.Duration(total) * 2 * oneWay),
		})
	}
	return t, nil
}

// E10ACLCapability measures the §3.5 combination: decision latency for
// pure-ACL, capability, combined, compound-principal, and group-backed
// paths, all in-process.
func E10ACLCapability() (*Table, error) {
	w, err := newWorld("alice", "host", "groups", "file")
	if err != nil {
		return nil, err
	}
	endSrv := endserver.New(w.id("file"), w.env("file"), w.clk)
	groupSrv := group.New(w.ident("groups"), w.clk)
	groupSrv.AddMember("staff", w.id("alice"))
	staff := groupSrv.Global("staff")

	endSrv.SetACL("/direct", acl.New(acl.PrincipalEntry(w.id("alice"), "read")))
	endSrv.SetACL("/cap", acl.New(acl.PrincipalEntry(w.id("alice"), "read")))
	endSrv.SetACL("/combined", acl.New(acl.Entry{
		Subject:      acl.Subject{Principals: principal.NewCompound(w.id("alice"))},
		Ops:          []string{"read"},
		Restrictions: restrict.Set{restrict.Quota{Currency: "mb", Limit: 100}},
	}))
	endSrv.SetACL("/compound", acl.New(acl.Entry{
		Subject: acl.Subject{Principals: principal.NewCompound(w.id("alice"), w.id("host"))},
		Ops:     []string{"read"},
	}))
	endSrv.SetACL("/grouped", acl.New(acl.GroupEntry(staff, "read")))

	capability, err := proxy.Grant(proxy.GrantParams{
		Grantor:       w.id("alice"),
		GrantorSigner: w.ident("alice").Signer(),
		Restrictions: restrict.Set{
			restrict.Authorized{Entries: []restrict.AuthorizedEntry{{Object: "/cap", Ops: []string{"read"}}}},
			restrict.Grantee{Principals: []principal.ID{w.id("host")}},
		},
		Lifetime: time.Hour,
		Mode:     proxy.ModePublicKey,
	})
	if err != nil {
		return nil, err
	}
	groupProxy, err := groupSrv.Grant(&group.GrantRequest{
		Client: w.id("alice"), Groups: []string{"staff"}, Lifetime: time.Hour, Delegate: true,
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E10",
		Title:   "ACL and capability decision paths",
		Paper:   "§3.5 (access-control-lists and capabilities)",
		Headers: []string{"path", "decision_us"},
		Notes:   "all paths decide locally; proxy paths add chain verification to the ACL lookup",
	}
	const iters = 500
	cases := []struct {
		name string
		req  *endserver.Request
	}{
		{"pure ACL", &endserver.Request{
			Object: "/direct", Op: "read", Identities: []principal.ID{w.id("alice")},
		}},
		{"capability (delegate)", &endserver.Request{
			Object: "/cap", Op: "read",
			Identities: []principal.ID{w.id("host")},
			Proxies:    []*proxy.Presentation{capability.PresentDelegate()},
		}},
		{"ACL + entry restrictions", &endserver.Request{
			Object: "/combined", Op: "read", Identities: []principal.ID{w.id("alice")},
			Amounts: map[string]int64{"mb": 10},
		}},
		{"compound principals", &endserver.Request{
			Object: "/compound", Op: "read",
			Identities: []principal.ID{w.id("alice"), w.id("host")},
		}},
		{"group proxy", &endserver.Request{
			Object: "/grouped", Op: "read",
			Identities: []principal.ID{w.id("alice")},
			Proxies:    []*proxy.Presentation{groupProxy.PresentDelegate()},
		}},
	}
	for _, c := range cases {
		d, err := timeOp(iters, func() error {
			_, err := endSrv.Authorize(c.req)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.name, us(d)})
	}
	return t, nil
}
