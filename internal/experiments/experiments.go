// Package experiments implements the evaluation harness of DESIGN.md:
// one experiment per figure of the paper (the paper has no quantitative
// tables; each figure's protocol is reproduced and characterized), plus
// executable versions of the related-work comparisons of §5.
//
// Each experiment returns a Table; cmd/benchproxy prints them and
// EXPERIMENTS.md records paper-claim vs measured-shape for each.
package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Table is one experiment's result.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (E1..E10).
	ID string
	// Title is a one-line description.
	Title string
	// Paper names the paper artifact reproduced.
	Paper string
	// Headers and Rows hold the result grid.
	Headers []string
	Rows    [][]string
	// Notes records the qualitative claim being checked.
	Notes string
}

// Render formats the table for terminal output.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n   reproduces: %s\n", t.ID, t.Title, t.Paper)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "   %s\n", t.Notes)
	}
	return b.String()
}

// Runner is one experiment entry point.
type Runner struct {
	// ID matches the Table it produces.
	ID string
	// Run executes the experiment.
	Run func() (*Table, error)
}

// All returns every experiment in order.
func All() []Runner {
	return []Runner{
		{"E1", E1GrantVerify},
		{"E2", E2FullStack},
		{"E3", E3Authorization},
		{"E4", E4Cascade},
		{"E5", E5Checks},
		{"E6", E6PublicKey},
		{"E7", E7Restrictions},
		{"E8", E8AmoebaVsChecks},
		{"E9", E9TGSProxy},
		{"E10", E10ACLCapability},
		{"E11", E11CrossRealm},
	}
}

// timeOp measures the mean duration of op over iters iterations.
func timeOp(iters int, op func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

// us formats a duration as microseconds with two decimals.
func us(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Nanoseconds())/1000, 'f', 2, 64)
}

// ms formats a duration as milliseconds with one decimal.
func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Nanoseconds())/1e6, 'f', 1, 64)
}

func itoa(v int) string { return strconv.Itoa(v) }

func i64(v int64) string { return strconv.FormatInt(v, 10) }

func u64(v uint64) string { return strconv.FormatUint(v, 10) }
