package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestAllExperimentsProduceTables smoke-runs the full suite: every
// experiment must succeed and produce a non-empty, well-formed table.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is timing-heavy")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			table, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			if table.ID != r.ID {
				t.Fatalf("table ID %q != runner ID %q", table.ID, r.ID)
			}
			if len(table.Headers) == 0 || len(table.Rows) == 0 {
				t.Fatalf("empty table: %+v", table)
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Headers) {
					t.Fatalf("row %d has %d cells, want %d", i, len(row), len(table.Headers))
				}
			}
			out := table.Render()
			if !strings.Contains(out, r.ID) || !strings.Contains(out, table.Title) {
				t.Fatalf("render missing id/title:\n%s", out)
			}
		})
	}
}

// TestE4ShapeOfflineVsOnline pins the headline claim: proxykit performs
// zero authentication-server round trips at every chain length, Sollins
// performs one per link.
func TestE4ShapeOfflineVsOnline(t *testing.T) {
	table, err := E4Cascade()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		chainLen, pkRTs, sollinsRTs := row[0], row[2], row[3]
		if pkRTs != "0" {
			t.Fatalf("chain %s: proxykit used %s AS round trips", chainLen, pkRTs)
		}
		if sollinsRTs != chainLen {
			t.Fatalf("chain %s: sollins used %s round trips", chainLen, sollinsRTs)
		}
	}
}

// TestE8ShapeOnPathTraffic pins the accounting claim: checks put zero
// bank round trips on the request path.
func TestE8ShapeOnPathTraffic(t *testing.T) {
	table, err := E8AmoebaVsChecks()
	if err != nil {
		t.Fatal(err)
	}
	var amoebaOnPath, checksOnPath string
	for _, row := range table.Rows {
		switch row[0] {
		case "amoeba prepay":
			amoebaOnPath = row[1]
		case "restricted-proxy checks":
			checksOnPath = row[1]
		}
	}
	if checksOnPath != "0" {
		t.Fatalf("checks on-path RTs = %s", checksOnPath)
	}
	if amoebaOnPath == "0" || amoebaOnPath == "" {
		t.Fatalf("amoeba on-path RTs = %s", amoebaOnPath)
	}
}

func TestTableRender(t *testing.T) {
	table := &Table{
		ID: "EX", Title: "title", Paper: "Fig. 0",
		Headers: []string{"a", "long_header"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "note",
	}
	out := table.Render()
	for _, want := range []string{"== EX: title", "Fig. 0", "long_header", "333", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if us(1500*time.Nanosecond) != "1.50" {
		t.Fatal(us(1500 * time.Nanosecond))
	}
	if ms(1500*time.Microsecond) != "1.5" {
		t.Fatal(ms(1500 * time.Microsecond))
	}
	if itoa(7) != "7" || i64(-2) != "-2" || u64(9) != "9" {
		t.Fatal("format helpers")
	}
}
