package experiments

import (
	"fmt"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
)

// realmName is the realm all experiments run in.
const realmName = "EXP.ORG"

// world is the shared experiment fixture: a directory of identities.
type world struct {
	dir *pubkey.Directory
	ids map[string]*pubkey.Identity
	clk clock.Clock
}

// newWorld provisions identities for the given names.
func newWorld(names ...string) (*world, error) {
	w := &world{
		dir: pubkey.NewDirectory(),
		ids: make(map[string]*pubkey.Identity, len(names)),
		clk: clock.System{},
	}
	for _, n := range names {
		ident, err := pubkey.NewIdentity(principal.New(n, realmName))
		if err != nil {
			return nil, err
		}
		w.ids[n] = ident
		w.dir.RegisterIdentity(ident)
	}
	return w, nil
}

// id returns a provisioned principal.
func (w *world) id(name string) principal.ID {
	return principal.New(name, realmName)
}

// ident returns a provisioned identity.
func (w *world) ident(name string) *pubkey.Identity {
	ident, ok := w.ids[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown identity %q", name))
	}
	return ident
}

// env builds a verification environment for a named server.
func (w *world) env(serverName string) *proxy.VerifyEnv {
	return &proxy.VerifyEnv{
		Server:          w.id(serverName),
		Clock:           w.clk,
		MaxSkew:         time.Minute,
		ResolveIdentity: w.dir.Resolver(),
	}
}

// addIdentity provisions one more identity into an existing world,
// idempotently.
func (w *world) addIdentity(name string) (*pubkey.Identity, error) {
	if ident, ok := w.ids[name]; ok {
		return ident, nil
	}
	ident, err := pubkey.NewIdentity(principal.New(name, realmName))
	if err != nil {
		return nil, err
	}
	w.ids[name] = ident
	w.dir.RegisterIdentity(ident)
	return ident, nil
}

// nRestrictions builds a restriction set of the requested size (a mix
// of authorized entries and quotas, representative of real proxies).
func nRestrictions(n int) restrict.Set {
	rs := make(restrict.Set, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			rs = append(rs, restrict.Authorized{Entries: []restrict.AuthorizedEntry{
				{Object: fmt.Sprintf("/obj/%d", i), Ops: []string{"read", "write"}},
			}})
		} else {
			rs = append(rs, restrict.Quota{Currency: fmt.Sprintf("cur%d", i), Limit: int64(i * 100)})
		}
	}
	return rs
}
