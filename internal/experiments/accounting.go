package experiments

import (
	"fmt"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/baseline/amoeba"
	"proxykit/internal/principal"
	"proxykit/internal/transport"
)

// E5Checks reproduces Fig. 5: check clearing across chains of
// accounting servers, duplicate rejection, and certified checks.
func E5Checks() (*Table, error) {
	w, err := newWorld("carol", "payee")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E5",
		Title:   "check clearing across accounting servers",
		Paper:   "Fig. 5 (processing a check), §4",
		Headers: []string{"bank_hops", "us_per_check", "endorsements", "duplicate_rejected", "certified_cleared"},
		Notes:   "hops = banks that process the check; endorsements = cascade links added in flight",
	}

	for _, hops := range []int{1, 2, 4, 8} {
		// Build a chain of banks; the payor banks at the last, the
		// payee deposits at the first.
		banks := make([]*accounting.Server, hops)
		for i := range banks {
			name := fmt.Sprintf("bank%d-h%d", i, hops)
			ident, err := w.addIdentity(name)
			if err != nil {
				return nil, err
			}
			banks[i] = accounting.NewServer(ident, w.dir.Resolver(), w.clk)
		}
		for i := 0; i+1 < hops; i++ {
			banks[i].SetNextHop(banks[i+1])
		}
		payorBank := banks[hops-1]
		payeeBank := banks[0]
		if err := payorBank.CreateAccount("carol", w.id("carol")); err != nil {
			return nil, err
		}
		if err := payorBank.Mint("carol", "dollars", 1<<40); err != nil {
			return nil, err
		}
		if err := payeeBank.CreateAccount("payee", w.id("payee")); err != nil {
			return nil, err
		}

		const iters = 100
		perCheck, err := timeOp(iters, func() error {
			c, err := accounting.WriteCheck(accounting.WriteCheckParams{
				Payor: w.ident("carol"), Bank: payorBank.ID, Account: "carol",
				Payee: w.id("payee"), Currency: "dollars", Amount: 5,
				Lifetime: time.Hour, Clock: w.clk,
			})
			if err != nil {
				return err
			}
			endorsed, err := c.Endorse(w.ident("payee"), payeeBank.ID, payeeBank.ID,
				payeeBank.Global("payee"), true, w.clk)
			if err != nil {
				return err
			}
			r, err := payeeBank.DepositCheck(endorsed, []principal.ID{w.id("payee")}, "payee")
			if err != nil {
				return err
			}
			if r.Hops != hops {
				return fmt.Errorf("hops = %d, want %d", r.Hops, hops)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}

		// Duplicate rejection.
		dup, err := accounting.WriteCheck(accounting.WriteCheckParams{
			Payor: w.ident("carol"), Bank: payorBank.ID, Account: "carol",
			Payee: w.id("payee"), Currency: "dollars", Amount: 5,
			Lifetime: time.Hour, Clock: w.clk,
		})
		if err != nil {
			return nil, err
		}
		dupE, err := dup.Endorse(w.ident("payee"), payeeBank.ID, payeeBank.ID,
			payeeBank.Global("payee"), true, w.clk)
		if err != nil {
			return nil, err
		}
		if _, err := payeeBank.DepositCheck(dupE, []principal.ID{w.id("payee")}, "payee"); err != nil {
			return nil, err
		}
		_, dupErr := payeeBank.DepositCheck(dupE, []principal.ID{w.id("payee")}, "payee")
		duplicateRejected := dupErr != nil

		// Certified check at the payor bank.
		cert, err := accounting.WriteCheck(accounting.WriteCheckParams{
			Payor: w.ident("carol"), Bank: payorBank.ID, Account: "carol",
			Payee: w.id("payee"), Currency: "dollars", Amount: 7,
			Lifetime: time.Hour, Clock: w.clk,
		})
		if err != nil {
			return nil, err
		}
		cc, err := payorBank.Certify("carol", []principal.ID{w.id("carol")}, cert)
		if err != nil {
			return nil, err
		}
		certE, err := cc.Check.Endorse(w.ident("payee"), payeeBank.ID, payeeBank.ID,
			payeeBank.Global("payee"), true, w.clk)
		if err != nil {
			return nil, err
		}
		_, certErr := payeeBank.DepositCheck(certE, []principal.ID{w.id("payee")}, "payee")

		t.Rows = append(t.Rows, []string{
			itoa(hops),
			us(perCheck),
			itoa(hops), // payee endorsement + one per intermediate bank
			fmt.Sprintf("%v", duplicateRejected),
			fmt.Sprintf("%v", certErr == nil),
		})
	}
	return t, nil
}

// E8AmoebaVsChecks reproduces the §5 Amoeba comparison: bank traffic on
// the request path for prepay vs check-based transfer.
func E8AmoebaVsChecks() (*Table, error) {
	const (
		clients  = 4
		servers  = 4
		requests = 25
		cost     = 1
	)
	t := &Table{
		ID:      "E8",
		Title:   "prepay (Amoeba) vs checks: bank traffic for 4 clients x 4 servers x 25 requests",
		Paper:   "§5 (Amoeba bank server comparison)",
		Headers: []string{"scheme", "onpath_bank_rts", "offpath_clearing_ops", "bank_rts_per_request"},
		Notes:   "Amoeba contacts the bank before service and per consumption; a check travels with the request and clears off-path",
	}

	// Amoeba: every (client, server) pair prepays once; every request
	// draws down prepaid funds with a bank round trip by the server.
	{
		bank := amoeba.NewBank()
		net := transport.NewNetwork()
		net.Register("bank", bank.Mux())
		bc := net.MustDial("bank")
		for i := 0; i < clients; i++ {
			bank.Mint(principal.New(fmt.Sprintf("c%d", i), realmName), "credits", 1<<20)
		}
		for i := 0; i < clients; i++ {
			client := amoeba.NewClient(principal.New(fmt.Sprintf("c%d", i), realmName), bc)
			for j := 0; j < servers; j++ {
				serverID := principal.New(fmt.Sprintf("s%d", j), realmName)
				service := amoeba.NewService(serverID, bc, "credits", cost)
				if err := client.Prepay(serverID, "credits", cost*requests); err != nil {
					return nil, err
				}
				for r := 0; r < requests; r++ {
					if err := service.Serve(client.ID); err != nil {
						return nil, err
					}
				}
			}
		}
		_, rts, _ := net.Stats().Snapshot()
		perReq := float64(rts) / float64(clients*servers*requests)
		t.Rows = append(t.Rows, []string{
			"amoeba prepay", u64(rts), "0", fmt.Sprintf("%.2f", perReq),
		})
	}

	// Checks: one check per (client, server) pair covers the whole
	// series (its quota restriction caps total spend); the request path
	// touches no bank. Clearing is one deposit per check, off-path.
	{
		w, err := newWorld("payee")
		if err != nil {
			return nil, err
		}
		bankIdent, err := w.addIdentity("bank")
		if err != nil {
			return nil, err
		}
		bank := accounting.NewServer(bankIdent, w.dir.Resolver(), w.clk)
		clearingOps := 0
		for i := 0; i < clients; i++ {
			name := fmt.Sprintf("client%d", i)
			ci, err := w.addIdentity(name)
			if err != nil {
				return nil, err
			}
			if err := bank.CreateAccount(name, ci.ID); err != nil {
				return nil, err
			}
			if err := bank.Mint(name, "credits", 1<<20); err != nil {
				return nil, err
			}
			for j := 0; j < servers; j++ {
				sname := fmt.Sprintf("srv%d", j)
				if _, ok := w.ids[sname]; !ok {
					si, err := w.addIdentity(sname)
					if err != nil {
						return nil, err
					}
					if err := bank.CreateAccount(sname, si.ID); err != nil {
						return nil, err
					}
				}
				check, err := accounting.WriteCheck(accounting.WriteCheckParams{
					Payor: ci, Bank: bank.ID, Account: name,
					Payee: w.id(sname), Currency: "credits", Amount: cost * requests,
					Lifetime: time.Hour, Clock: w.clk,
				})
				if err != nil {
					return nil, err
				}
				// The server serves all requests against the check's
				// quota, no bank contact, then deposits once.
				if _, err := bank.DepositCheck(check, []principal.ID{w.id(sname)}, sname); err != nil {
					return nil, err
				}
				clearingOps++
			}
		}
		t.Rows = append(t.Rows, []string{
			"restricted-proxy checks", "0", itoa(clearingOps), "0.00",
		})
	}
	return t, nil
}
