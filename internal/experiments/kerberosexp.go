package experiments

import (
	"fmt"
	"time"

	"proxykit/internal/kerberos"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/restrict"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

// E9TGSProxy reproduces the §6.3 trade-off: a conventional proxy works
// at one end-server, so delegation across N servers goes through a
// proxy for the ticket-granting service (one TGS round trip per
// server); a public-key proxy verifies everywhere with no KDC traffic,
// relying on issued-for to confine it.
func E9TGSProxy() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "delegation across N end-servers: TGS proxy vs public-key proxy",
		Paper:   "§6.2/§6.3 (Kerberos integration, proxy for the TGS)",
		Headers: []string{"servers", "kerberos_kdc_rts", "kerberos_us_per_server", "pk_kdc_rts", "pk_grant_us_total"},
		Notes:   "the conventional grantee pays one TGS exchange per end-server; the public-key grantee pays none",
	}

	for _, n := range []int{1, 4, 16} {
		// Kerberos side: a KDC over a metered network.
		kdc, err := kerberos.NewKDC(realmName, nil)
		if err != nil {
			return nil, err
		}
		aliceID := principal.New("alice", realmName)
		aliceKey, err := kdc.RegisterWithPassword(aliceID, "pw")
		if err != nil {
			return nil, err
		}
		serverIDs := make([]principal.ID, n)
		for i := range serverIDs {
			serverIDs[i] = principal.New(fmt.Sprintf("srv%d", i), realmName)
			if _, err := kdc.RegisterWithPassword(serverIDs[i], "spw"); err != nil {
				return nil, err
			}
		}
		net := transport.NewNetwork()
		net.Register("kdc", svc.NewKDCService(kdc).Mux())
		kc := svc.NewKDCClient(net.MustDial("kdc"))

		alice := kerberos.NewClient(aliceID, aliceKey, nil)
		tgt, err := alice.Login(kc, kdc.TGS(), time.Hour, nil)
		if err != nil {
			return nil, err
		}
		px, err := kerberos.MakeProxy(tgt, restrict.Set{
			restrict.Authorized{Entries: []restrict.AuthorizedEntry{{Object: "/doc", Ops: []string{"read"}}}},
		}, nil)
		if err != nil {
			return nil, err
		}
		net.Stats().Reset() // count only the per-server acquisition

		bobID := principal.New("bob", realmName)
		start := time.Now()
		for _, sid := range serverIDs {
			if _, err := kerberos.RequestTicketWithProxy(kc, px, bobID, sid, time.Hour, nil); err != nil {
				return nil, err
			}
		}
		kerbElapsed := time.Since(start)
		_, kerbRTs, _ := net.Stats().Snapshot()

		// Public-key side: one grant confined to the same N servers,
		// verifiable at each with no further infrastructure traffic.
		w, err := newWorld("alice")
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if _, err := w.addIdentity(fmt.Sprintf("srv%d", i)); err != nil {
				return nil, err
			}
		}
		pkStart := time.Now()
		pkProxy, err := proxy.Grant(proxy.GrantParams{
			Grantor:       w.id("alice"),
			GrantorSigner: w.ident("alice").Signer(),
			Restrictions: restrict.Set{
				restrict.IssuedFor{Servers: serverIDs},
				restrict.Authorized{Entries: []restrict.AuthorizedEntry{{Object: "/doc", Ops: []string{"read"}}}},
			},
			Lifetime: time.Hour,
			Mode:     proxy.ModePublicKey,
		})
		if err != nil {
			return nil, err
		}
		pkElapsed := time.Since(pkStart)
		// Sanity: it verifies at each server.
		for i := 0; i < n; i++ {
			if _, err := w.env(fmt.Sprintf("srv%d", i)).VerifyChain(pkProxy.Certs); err != nil {
				return nil, err
			}
		}

		t.Rows = append(t.Rows, []string{
			itoa(n),
			u64(kerbRTs),
			us(kerbElapsed / time.Duration(n)),
			"0",
			us(pkElapsed),
		})
	}
	return t, nil
}

// E11CrossRealm characterizes the cross-realm extension: KDC traffic
// and latency for reaching services across a federated realm boundary,
// compared with in-realm access.
func E11CrossRealm() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "cross-realm access: extra cost of crossing a federated boundary",
		Paper:   "extension (supports §9: \"the resulting mechanisms scale\")",
		Headers: []string{"path", "kdc_rts", "us_per_ticket", "restrictions_carried"},
		Notes:   "a cross-realm service ticket costs one extra TGS exchange; authorization-data crosses intact",
	}
	kdcA, err := kerberos.NewKDC("ALPHA.EXP", nil)
	if err != nil {
		return nil, err
	}
	kdcB, err := kerberos.NewKDC("BETA.EXP", nil)
	if err != nil {
		return nil, err
	}
	if err := kerberos.Federate(kdcA, kdcB); err != nil {
		return nil, err
	}
	aliceID := principal.New("alice", "ALPHA.EXP")
	aliceKey, err := kdcA.RegisterWithPassword(aliceID, "pw")
	if err != nil {
		return nil, err
	}
	localSv := principal.New("svc", "ALPHA.EXP")
	if _, err := kdcA.RegisterWithPassword(localSv, "s1"); err != nil {
		return nil, err
	}
	remoteSv := principal.New("svc", "BETA.EXP")
	if _, err := kdcB.RegisterWithPassword(remoteSv, "s2"); err != nil {
		return nil, err
	}

	netA := transport.NewNetwork()
	netA.Register("kdcA", svc.NewKDCService(kdcA).Mux())
	netB := transport.NewNetwork()
	netB.Register("kdcB", svc.NewKDCService(kdcB).Mux())
	kcA := svc.NewKDCClient(netA.MustDial("kdcA"))
	kcB := svc.NewKDCClient(netB.MustDial("kdcB"))

	alice := kerberos.NewClient(aliceID, aliceKey, nil)
	rs := restrict.Set{restrict.Quota{Currency: "mb", Limit: 10}}
	tgt, err := alice.Login(kcA, kdcA.TGS(), time.Hour, rs)
	if err != nil {
		return nil, err
	}
	netA.Stats().Reset()

	const iters = 100
	// In-realm ticket.
	inRealm, err := timeOp(iters, func() error {
		_, err := alice.RequestTicket(kcA, tgt, localSv, time.Hour, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	_, localRTs, _ := netA.Stats().Snapshot()
	t.Rows = append(t.Rows, []string{
		"in-realm", fmt.Sprintf("%.0f", float64(localRTs)/iters), us(inRealm), "yes",
	})

	// Cross-realm ticket.
	netA.Stats().Reset()
	netB.Stats().Reset()
	var lastAuthz restrict.Set
	crossRealm, err := timeOp(iters, func() error {
		creds, err := alice.CrossRealmTicket(kcA, kcB, tgt, "BETA.EXP", remoteSv, time.Hour, nil)
		if err != nil {
			return err
		}
		lastAuthz = creds.AuthzData
		return nil
	})
	if err != nil {
		return nil, err
	}
	_, aRTs, _ := netA.Stats().Snapshot()
	_, bRTs, _ := netB.Stats().Snapshot()
	carried := "no"
	if lastAuthz.Quotas()["mb"] == 10 {
		carried = "yes"
	}
	t.Rows = append(t.Rows, []string{
		"cross-realm", fmt.Sprintf("%.0f", float64(aRTs+bRTs)/iters), us(crossRealm), carried,
	})
	return t, nil
}
