package experiments

import (
	"fmt"
	"time"

	"proxykit/internal/baseline/sollins"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/restrict"
	"proxykit/internal/transport"
)

// E1GrantVerify characterizes Fig. 1: the cost of granting and
// verifying a restricted proxy as the restriction set grows.
func E1GrantVerify() (*Table, error) {
	w, err := newWorld("alice", "file")
	if err != nil {
		return nil, err
	}
	env := w.env("file")
	t := &Table{
		ID:      "E1",
		Title:   "restricted proxy grant and verify cost",
		Paper:   "Fig. 1 (certificate + proxy key)",
		Headers: []string{"kind", "restrictions", "grant_us", "verify_us", "cert_bytes"},
		Notes:   "verification is local: no authentication-server contact at any size",
	}
	const iters = 300
	for _, kind := range []string{"bearer", "delegate"} {
		for _, n := range []int{0, 4, 8, 16} {
			rs := nRestrictions(n)
			if kind == "delegate" {
				rs = rs.Merge(restrict.Set{restrict.Grantee{Principals: []principal.ID{w.id("file")}}})
			}
			var p *proxy.Proxy
			grantTime, err := timeOp(iters, func() error {
				var err error
				p, err = proxy.Grant(proxy.GrantParams{
					Grantor:       w.id("alice"),
					GrantorSigner: w.ident("alice").Signer(),
					Restrictions:  rs,
					Lifetime:      time.Hour,
					Mode:          proxy.ModePublicKey,
				})
				return err
			})
			if err != nil {
				return nil, err
			}
			verifyTime, err := timeOp(iters, func() error {
				_, err := env.VerifyChain(p.Certs)
				return err
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				kind, itoa(n), us(grantTime), us(verifyTime), itoa(len(p.MarshalCerts())),
			})
		}
	}
	return t, nil
}

// E4Cascade reproduces Fig. 4: cascaded proxies verified offline,
// against the Sollins baseline that contacts the authentication server
// once per link.
func E4Cascade() (*Table, error) {
	w, err := newWorld("alice", "file")
	if err != nil {
		return nil, err
	}
	env := w.env("file")

	// Sollins setup: an authentication server on a metered network.
	as := sollins.NewAuthServer()
	holder := principal.New("holder", realmName)
	hops := []principal.ID{principal.New("p0", realmName)}
	keys := map[principal.ID]*kcrypto.SymmetricKey{}
	k, err := as.Register(hops[0])
	if err != nil {
		return nil, err
	}
	keys[hops[0]] = k
	net := transport.NewNetwork()
	net.Register("as", as.Mux())
	asClient := net.MustDial("as")

	const oneWay = 5 * time.Millisecond
	t := &Table{
		ID:      "E4",
		Title:   "cascaded authorization: offline chains vs Sollins online verification",
		Paper:   "Fig. 4 (cascaded proxies), §3.4 comparison",
		Headers: []string{"chain_len", "proxykit_verify_us", "proxykit_AS_rts", "sollins_AS_rts", "sollins_net_ms@5ms"},
		Notes:   "proxykit's verification cost grows only with chain length; Sollins adds a server round trip per link",
	}
	const iters = 200
	for _, chainLen := range []int{1, 2, 4, 8, 16} {
		// Build a proxykit bearer chain of chainLen certificates.
		p, err := proxy.Grant(proxy.GrantParams{
			Grantor:       w.id("alice"),
			GrantorSigner: w.ident("alice").Signer(),
			Restrictions:  nRestrictions(2),
			Lifetime:      time.Hour,
			Mode:          proxy.ModePublicKey,
		})
		if err != nil {
			return nil, err
		}
		for i := 1; i < chainLen; i++ {
			p, err = p.CascadeBearer(proxy.CascadeParams{
				Added:    nRestrictions(1),
				Lifetime: time.Hour,
				Mode:     proxy.ModePublicKey,
			})
			if err != nil {
				return nil, err
			}
		}
		verifyTime, err := timeOp(iters, func() error {
			_, err := env.VerifyChain(p.Certs)
			return err
		})
		if err != nil {
			return nil, err
		}

		// Build the equivalent Sollins chain.
		for len(hops) < chainLen+1 {
			next := principal.New(fmt.Sprintf("p%d", len(hops)), realmName)
			nk, err := as.Register(next)
			if err != nil {
				return nil, err
			}
			keys[next] = nk
			hops = append(hops, next)
		}
		chain := sollins.Chain{}
		for i := 0; i < chainLen; i++ {
			to := holder
			if i < chainLen-1 {
				to = hops[i+1]
			}
			l, err := sollins.NewLink(hops[i], keys[hops[i]], to, nRestrictions(1))
			if err != nil {
				return nil, err
			}
			chain = chain.Extend(l)
		}
		_, trips, err := sollins.Verify(chain, holder, asClient)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(chainLen),
			us(verifyTime),
			"0",
			itoa(trips),
			ms(time.Duration(trips) * 2 * oneWay),
		})
	}
	return t, nil
}

// E6PublicKey reproduces Fig. 6: public-key proxies compared with the
// conventional-cryptography integration for the same restriction set.
func E6PublicKey() (*Table, error) {
	w, err := newWorld("alice", "file")
	if err != nil {
		return nil, err
	}
	env := w.env("file")
	endKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	env.UnsealProxyKey = proxy.UnsealWith(endKey)
	// In conventional mode the grantor signs with a key the end-server
	// can check: a session key shared with the end-server (§6.2).
	session, err := kcrypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	convResolver := func(id principal.ID) (kcrypto.Verifier, error) {
		return session, nil
	}

	t := &Table{
		ID:      "E6",
		Title:   "public-key vs conventional proxies",
		Paper:   "Fig. 6 (public-key restricted proxy), §6",
		Headers: []string{"mode", "grant_us", "present_us", "verify_present_us", "cert_bytes"},
		Notes:   "conventional certificates are smaller and faster but bind to one end-server; public-key proxies verify anywhere (hence issued-for, §7.3)",
	}
	serverECDH, err := kcrypto.NewECDHKey()
	if err != nil {
		return nil, err
	}
	const iters = 300
	rs := nRestrictions(4)
	for _, variant := range []string{"public-key", "conventional", "hybrid"} {
		params := proxy.GrantParams{
			Grantor:       w.id("alice"),
			GrantorSigner: w.ident("alice").Signer(),
			Restrictions:  rs,
			Lifetime:      time.Hour,
			Mode:          proxy.ModePublicKey,
		}
		e := env
		switch variant {
		case "conventional":
			params.Mode = proxy.ModeConventional
			params.EndServerKey = endKey
			params.GrantorSigner = session
			convEnv := *env
			convEnv.ResolveIdentity = convResolver
			convEnv.UnsealProxyKey = proxy.UnsealWith(endKey)
			e = &convEnv
		case "hybrid":
			// §6.1 hybrid: identity-signed certificate, conventional
			// proxy key sealed to the end-server's public key.
			params.Mode = proxy.ModeConventional
			params.EndServerECDH = serverECDH.PublicBytes()
			hybEnv := *env
			hybEnv.UnsealProxyKey = proxy.UnsealWithECDH(serverECDH)
			e = &hybEnv
		}
		var p *proxy.Proxy
		grantTime, err := timeOp(iters, func() error {
			var err error
			p, err = proxy.Grant(params)
			return err
		})
		if err != nil {
			return nil, err
		}
		ch, err := proxy.NewChallenge()
		if err != nil {
			return nil, err
		}
		var pres *proxy.Presentation
		presentTime, err := timeOp(iters, func() error {
			var err error
			pres, err = p.Present(ch, w.id("file"))
			return err
		})
		if err != nil {
			return nil, err
		}
		verifyTime, err := timeOp(iters, func() error {
			_, err := e.VerifyPresentation(pres, ch)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			variant, us(grantTime), us(presentTime), us(verifyTime), itoa(len(p.MarshalCerts())),
		})
	}
	return t, nil
}
