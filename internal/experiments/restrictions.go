package experiments

import (
	"fmt"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/principal"
	"proxykit/internal/replay"
	"proxykit/internal/restrict"
)

// E7Restrictions characterizes §7: evaluation cost per restriction type
// and accept-once registry scaling.
func E7Restrictions() (*Table, error) {
	w, err := newWorld("alice", "bob", "file", "groups")
	if err != nil {
		return nil, err
	}
	staff := principal.NewGlobal(w.id("groups"), "staff")
	clk := clock.NewFake(time.Unix(30_000_000, 0))
	registry := replay.New(clk)

	ctxFor := func(i int) *restrict.Context {
		return &restrict.Context{
			Server:           w.id("file"),
			Object:           "/obj",
			Operation:        "read",
			ClientIdentities: []principal.ID{w.id("alice"), w.id("bob")},
			VerifiedGroups:   map[principal.Global]bool{staff: true},
			AssertedGroups:   []principal.Global{staff},
			Amounts:          map[string]int64{"pages": 5},
			DepositAccount:   principal.NewGlobal(w.id("file"), "acct"),
			Now:              clk.Now(),
			Expires:          clk.Now().Add(time.Hour),
			GrantorKeyID:     "g",
			AcceptOnce:       registry,
		}
	}

	t := &Table{
		ID:      "E7",
		Title:   "restriction evaluation cost by type",
		Paper:   "§7 (common restrictions)",
		Headers: []string{"restriction", "eval_ns"},
		Notes:   "per-restriction check cost on a passing request; accept-once includes registry insertion",
	}
	cases := []struct {
		name string
		r    restrict.Restriction
	}{
		{"grantee", restrict.Grantee{Principals: []principal.ID{w.id("alice")}}},
		{"for-use-by-group", restrict.ForUseByGroup{Groups: []principal.Global{staff}}},
		{"issued-for", restrict.IssuedFor{Servers: []principal.ID{w.id("file")}}},
		{"quota", restrict.Quota{Currency: "pages", Limit: 100}},
		{"authorized (4 entries)", restrict.Authorized{Entries: []restrict.AuthorizedEntry{
			{Object: "/a"}, {Object: "/b"}, {Object: "/c"}, {Object: "/obj", Ops: []string{"read"}},
		}}},
		{"group-membership", restrict.GroupMembership{Groups: []principal.Global{staff}}},
		{"limit (applies)", restrict.Limit{
			Servers:      []principal.ID{w.id("file")},
			Restrictions: restrict.Set{restrict.Quota{Currency: "pages", Limit: 100}},
		}},
		{"limit (skipped)", restrict.Limit{
			Servers:      []principal.ID{w.id("groups")},
			Restrictions: restrict.Set{restrict.Quota{Currency: "pages", Limit: 1}},
		}},
		{"deposit-to", restrict.DepositTo{Account: principal.NewGlobal(w.id("file"), "acct")}},
	}
	const iters = 20000
	for _, c := range cases {
		ctx := ctxFor(0)
		d, err := timeOp(iters, func() error { return c.r.Check(ctx) })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.name, i64(d.Nanoseconds())})
	}
	// accept-once inserts a fresh identifier each time.
	i := 0
	d, err := timeOp(iters, func() error {
		i++
		r := restrict.AcceptOnce{ID: fmt.Sprintf("id-%d", i)}
		return r.Check(ctxFor(i))
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"accept-once (fresh id)", i64(d.Nanoseconds())})

	// Registry scaling: accept cost with a large retained population.
	for _, pop := range []int{1_000, 100_000} {
		reg := replay.New(clk)
		reg.SweepEvery = 0
		for j := 0; j < pop; j++ {
			if err := reg.Accept("g", fmt.Sprintf("pre-%d", j), clk.Now().Add(time.Hour)); err != nil {
				return nil, err
			}
		}
		j := 0
		d, err := timeOp(10000, func() error {
			j++
			return reg.Accept("g", fmt.Sprintf("new-%d", j), clk.Now().Add(time.Hour))
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("accept-once (registry=%d)", pop), i64(d.Nanoseconds()),
		})
	}
	return t, nil
}
