package ledger

// Tests for group commit (commit cohorts under FsyncAlways), the
// fail-closed interval-fsync regression, and the in-order append-hook
// contract.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitConcurrentAppends drives many concurrent committers
// through the cohort path and checks that every append is acknowledged
// with a unique sequence number and that a clean reopen replays all of
// them in order.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	seqs := make([][]uint64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seq, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					errs[w] = err
					return
				}
				seqs[w] = append(seqs[w], seq)
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	seen := make(map[uint64]bool)
	for w := range seqs {
		for _, s := range seqs[w] {
			if seen[s] {
				t.Fatalf("sequence %d acknowledged twice", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("%d unique seqs, want %d", len(seen), workers*perWorker)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, FsyncAlways)
	defer l2.Close()
	if rec.Replayed() != workers*perWorker {
		t.Fatalf("replayed %d records, want %d", rec.Replayed(), workers*perWorker)
	}
	for i, e := range rec.Entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d — recovered prefix not dense", i, e.Seq)
		}
	}
}

// TestGroupCommitBatches proves cohorts actually batch: with appenders
// stalled behind one slow fsync, the ledger must flush fewer batches
// than records.
func TestGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	defer l.Close()

	// Slow every fsync down so concurrent appenders pile into cohorts.
	var fsyncs atomic.Int64
	l.syncFault = func() error {
		fsyncs.Add(1)
		time.Sleep(5 * time.Millisecond)
		return nil
	}

	const workers, perWorker = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := l.Append([]byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := fsyncs.Load(); n >= workers*perWorker {
		t.Fatalf("%d fsyncs for %d appends — no batching happened", n, workers*perWorker)
	} else {
		t.Logf("%d appends in %d fsyncs (amortization %.1fx)", workers*perWorker, n,
			float64(workers*perWorker)/float64(n))
	}
}

// TestGroupCommitCohortFailureFailsClosed injects an fsync error under
// concurrent cohort traffic: every member of the failed cohort must get
// the error, and the ledger must refuse all later appends.
func TestGroupCommitCohortFailureFailsClosed(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	defer l.Close()

	boom := errors.New("injected fsync failure")
	var arm atomic.Bool
	l.syncFault = func() error {
		if arm.Load() {
			return boom
		}
		return nil
	}

	appendT(t, l, "before")
	arm.Store(true)

	const workers = 6
	var wg sync.WaitGroup
	failed := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, failed[w] = l.Append([]byte("doomed"))
		}()
	}
	wg.Wait()
	for w, err := range failed {
		if err == nil {
			t.Fatalf("worker %d: append succeeded after injected fsync failure", w)
		}
		if !errors.Is(err, boom) && !strings.Contains(err.Error(), "earlier write failure") {
			t.Fatalf("worker %d: unexpected error %v", w, err)
		}
	}
	if _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("ledger accepted an append after a cohort failure — must fail closed")
	} else if !errors.Is(err, boom) {
		t.Fatalf("fail-closed error does not wrap the cause: %v", err)
	}
}

// TestIntervalFsyncFailureFailsClosed is the regression test for the
// syncLoop bug: an interval-mode timer fsync failure was only logged,
// leaving the ledger accepting appends past unsynced (possibly torn)
// data. The ledger must fail closed instead.
func TestIntervalFsyncFailureFailsClosed(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Fsync: FsyncInterval, FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	boom := errors.New("injected interval fsync failure")
	l.mu.Lock()
	l.syncFault = func() error { return boom }
	l.mu.Unlock()

	appendT(t, l, "dirty") // marks the ledger dirty; the next tick's fsync fails

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := l.Append([]byte("should-be-refused"))
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("refusal does not wrap the fsync error: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("appends still succeeding long after an interval fsync failure — ledger did not fail closed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// And it stays closed.
	if _, err := l.Append([]byte("still-refused")); err == nil {
		t.Fatal("append succeeded after the ledger failed closed")
	}
}

// TestAppendHookInOrder pins the hook-delivery contract: hooks fire in
// sequence order even under concurrent cohort commits.
func TestAppendHookInOrder(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	defer l.Close()

	var mu sync.Mutex
	var got []uint64
	l.SetAppendHook(func(seq uint64) {
		mu.Lock()
		got = append(got, seq)
		mu.Unlock()
	})

	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := l.Append([]byte("h")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != workers*perWorker {
		t.Fatalf("hook fired %d times, want %d", len(got), workers*perWorker)
	}
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("hook %d delivered seq %d — out of order", i, s)
		}
	}
}

// TestGroupCommitDisabled checks the NoGroupCommit escape hatch still
// commits durably and replays.
func TestGroupCommitDisabled(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Fsync: FsyncAlways, NoGroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := l.Append([]byte("plain")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, FsyncAlways)
	if rec.Replayed() != 40 {
		t.Fatalf("replayed %d, want 40", rec.Replayed())
	}
}

// TestSnapshotSkipsTruncateWithPendingCohort covers the writeSnapshot
// guard: frames accumulated for a cohort that has not flushed yet must
// keep the WAL from being truncated underneath them.
func TestSnapshotSkipsTruncateWithPendingCohort(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	defer l.Close()

	appendT(t, l, "durable")
	seq := l.LastSeq()

	// Simulate a forming cohort: pending frames, no flush yet.
	l.mu.Lock()
	l.pending = appendFrame(nil, l.seq+1, []byte("in-flight"))
	l.mu.Unlock()

	if err := l.WriteSnapshot([]byte(`{"s":1}`), seq); err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	size := l.size
	l.mu.Unlock()
	if size == 0 {
		t.Fatal("snapshot truncated the WAL while cohort frames were pending")
	}
}
