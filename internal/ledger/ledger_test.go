package ledger

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"
)

// openT opens a ledger in dir, failing the test on error.
func openT(t *testing.T, dir string, mode FsyncMode) (*Ledger, *Recovery) {
	t.Helper()
	l, rec, err := Open(Options{Dir: dir, Fsync: mode})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func appendT(t *testing.T, l *Ledger, payload string) uint64 {
	t.Helper()
	seq, err := l.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	return seq
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, FsyncAlways)
	if rec.Replayed() != 0 || rec.Snapshot != nil {
		t.Fatalf("fresh dir recovered %d records, snapshot %v", rec.Replayed(), rec.Snapshot)
	}
	for i := 0; i < 5; i++ {
		if seq := appendT(t, l, fmt.Sprintf("record-%d", i)); seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := openT(t, dir, FsyncAlways)
	defer l2.Close()
	if rec2.Replayed() != 5 {
		t.Fatalf("replayed %d records, want 5", rec2.Replayed())
	}
	for i, e := range rec2.Entries {
		if e.Seq != uint64(i+1) || string(e.Data) != fmt.Sprintf("record-%d", i) {
			t.Fatalf("entry %d: seq %d data %q", i, e.Seq, e.Data)
		}
	}
	// Appends continue the sequence.
	if seq := appendT(t, l2, "after"); seq != 6 {
		t.Fatalf("post-recovery append seq %d, want 6", seq)
	}
}

func TestFsyncOffBufferedUntilSync(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncOff)
	appendT(t, l, "buffered")
	if fi, err := os.Stat(WALPath(dir)); err != nil || fi.Size() != 0 {
		t.Fatalf("FsyncOff append hit disk before Sync: size %d err %v", fi.Size(), err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(WALPath(dir)); fi.Size() == 0 {
		t.Fatal("Sync did not flush buffered frames")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, FsyncOff)
	if rec.Replayed() != 1 || string(rec.Entries[0].Data) != "buffered" {
		t.Fatalf("recovered %v", rec.Entries)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	appendT(t, l, "alpha")
	appendT(t, l, "beta")
	l.Close()

	// Simulate a crash mid-append: a partial frame at the tail.
	full, _ := os.ReadFile(WALPath(dir))
	f, err := os.OpenFile(WALPath(dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	partial := make([]byte, 11)
	binary.LittleEndian.PutUint32(partial, 8+100) // claims 100 payload bytes
	f.Write(partial)
	f.Close()

	l2, rec := openT(t, dir, FsyncAlways)
	defer l2.Close()
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	if rec.Replayed() != 2 {
		t.Fatalf("replayed %d, want 2", rec.Replayed())
	}
	if got, _ := os.ReadFile(WALPath(dir)); !bytes.Equal(got, full) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", len(got), len(full))
	}
	// The next append lands cleanly after the truncation.
	if seq := appendT(t, l2, "gamma"); seq != 3 {
		t.Fatalf("seq %d, want 3", seq)
	}
}

func TestTornFinalChecksumTolerated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	appendT(t, l, "alpha")
	appendT(t, l, "beta")
	l.Close()

	// Flip a byte in the FINAL record's payload: full-length frame, bad
	// checksum — still the tail, still dropped rather than refused.
	data, _ := os.ReadFile(WALPath(dir))
	data[len(data)-1] ^= 0xff
	os.WriteFile(WALPath(dir), data, 0o600)

	l2, rec := openT(t, dir, FsyncAlways)
	defer l2.Close()
	if !rec.TornTail || rec.Replayed() != 1 || string(rec.Entries[0].Data) != "alpha" {
		t.Fatalf("torn=%v entries=%v", rec.TornTail, rec.Entries)
	}
}

func TestCorruptMiddleRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	appendT(t, l, "alpha")
	appendT(t, l, "beta")
	appendT(t, l, "gamma")
	l.Close()

	offsets, err := ScanOffsets(WALPath(dir))
	if err != nil || len(offsets) != 3 {
		t.Fatalf("ScanOffsets: %v %v", offsets, err)
	}
	data, _ := os.ReadFile(WALPath(dir))
	data[offsets[0].End+frameHeaderLen+8] ^= 0xff // corrupt record 2's payload
	os.WriteFile(WALPath(dir), data, 0o600)

	_, _, err = Open(Options{Dir: dir, Fsync: FsyncAlways})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt middle: err %v, want ErrCorrupt", err)
	}
}

func TestSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	appendT(t, l, "a")
	appendT(t, l, "b")
	if err := l.WriteSnapshot([]byte(`{"v":2}`), l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(WALPath(dir)); fi.Size() != 0 {
		t.Fatalf("WAL not truncated after covering snapshot: %d bytes", fi.Size())
	}
	appendT(t, l, "c") // seq 3, after the snapshot
	l.Close()

	l2, rec := openT(t, dir, FsyncAlways)
	defer l2.Close()
	if rec.SnapshotSeq != 2 || string(rec.Snapshot) != `{"v":2}` {
		t.Fatalf("snapshot seq %d state %s", rec.SnapshotSeq, rec.Snapshot)
	}
	if rec.Replayed() != 1 || rec.Entries[0].Seq != 3 || string(rec.Entries[0].Data) != "c" {
		t.Fatalf("entries %v", rec.Entries)
	}
	if seq := appendT(t, l2, "d"); seq != 4 {
		t.Fatalf("seq %d, want 4", seq)
	}
}

func TestSnapshotKeepsWALWhenBehind(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	appendT(t, l, "a")
	captured := l.LastSeq()
	appendT(t, l, "b") // races past the captured state
	if err := l.WriteSnapshot([]byte(`{"v":1}`), captured); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(WALPath(dir)); fi.Size() == 0 {
		t.Fatal("WAL truncated despite records past the snapshot")
	}
	l.Close()

	// Replay skips the covered record, keeps the raced one.
	l2, rec := openT(t, dir, FsyncAlways)
	defer l2.Close()
	if rec.SnapshotSeq != 1 || rec.Replayed() != 1 || rec.Entries[0].Seq != 2 {
		t.Fatalf("snapSeq %d entries %v", rec.SnapshotSeq, rec.Entries)
	}
}

func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	// The crash window the sequence numbers exist for: snapshot.json is
	// committed but the old WAL (fully covered by it) is still there.
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	appendT(t, l, "a")
	appendT(t, l, "b")
	l.Close()

	snap, err := os.ReadFile(WALPath(dir)) // keep WAL bytes
	if err != nil {
		t.Fatal(err)
	}
	l, _ = openT(t, dir, FsyncAlways)
	if err := l.WriteSnapshot([]byte(`{"v":2}`), 2); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Resurrect the pre-truncation WAL, as if the truncate never ran.
	os.WriteFile(WALPath(dir), snap, 0o600)

	l2, rec := openT(t, dir, FsyncAlways)
	defer l2.Close()
	if rec.SnapshotSeq != 2 || rec.Replayed() != 0 {
		t.Fatalf("snapSeq %d replayed %d, want 2 and 0", rec.SnapshotSeq, rec.Replayed())
	}
	if seq := appendT(t, l2, "c"); seq != 3 {
		t.Fatalf("seq %d, want 3", seq)
	}
}

func TestLeftoverSnapshotTmpDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	appendT(t, l, "a")
	l.Close()
	os.WriteFile(SnapshotPath(dir)+".tmp", []byte("half-written"), 0o600)

	l2, rec := openT(t, dir, FsyncAlways)
	defer l2.Close()
	if rec.Snapshot != nil || rec.Replayed() != 1 {
		t.Fatalf("tmp snapshot leaked into recovery: %v", rec)
	}
	if _, err := os.Stat(SnapshotPath(dir) + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("snapshot tmp not removed")
	}
}

func TestSequenceBreakRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	appendT(t, l, "a")
	appendT(t, l, "b")
	appendT(t, l, "c")
	l.Close()

	offsets, _ := ScanOffsets(WALPath(dir))
	data, _ := os.ReadFile(WALPath(dir))
	// Splice record 2 out entirely: 1 then 3 is a sequence break.
	spliced := append([]byte{}, data[:offsets[0].End]...)
	spliced = append(spliced, data[offsets[1].End:]...)
	os.WriteFile(WALPath(dir), spliced, 0o600)

	_, _, err := Open(Options{Dir: dir, Fsync: FsyncAlways})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sequence break: err %v, want ErrCorrupt", err)
	}
}

func TestAppendHook(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	defer l.Close()
	var seen []uint64
	l.SetAppendHook(func(seq uint64) { seen = append(seen, seq) })
	appendT(t, l, "a")
	appendT(t, l, "b")
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("hook saw %v", seen)
	}
}

func TestFsyncIntervalSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Fsync: FsyncInterval, FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	appendT(t, l, "a")
	// Interval mode writes per append (fsync deferred): the bytes must
	// already be visible to a reopen even before any timer tick.
	if fi, _ := os.Stat(WALPath(dir)); fi.Size() == 0 {
		t.Fatal("interval mode buffered instead of writing")
	}
	// Wait for the interval timer to flush (the dirty flag clears on
	// fsync) instead of assuming a fixed sleep outruns the 1ms timer.
	flushed := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		dirty := l.dirty
		l.mu.Unlock()
		if !dirty {
			break
		}
		if time.Now().After(flushed) {
			t.Fatal("interval fsync timer never flushed the append")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, FsyncInterval)
	if rec.Replayed() != 1 {
		t.Fatalf("replayed %d", rec.Replayed())
	}
}

func TestParseFsyncMode(t *testing.T) {
	for s, want := range map[string]FsyncMode{"always": FsyncAlways, "interval": FsyncInterval, "off": FsyncOff} {
		got, err := ParseFsyncMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestAppendAfterCloseRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncOff)
	l.Close()
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}
