// Package ledger is the durability substrate for the accounting, authz,
// and group databases: a write-ahead log plus snapshot files in a
// directory.
//
// §4 of the paper makes accounting servers the system of record, and
// §7.7 requires a bank to remember paid check numbers "until the
// expiration time on the check" — obligations that do not survive a
// process restart if the state lives only in maps. A server using this
// package appends one WAL record per committed mutation *before* the
// in-memory change becomes visible, periodically captures a full-state
// snapshot, and on startup restores the snapshot and replays the WAL
// tail.
//
// WAL format: a sequence of frames
//
//	[4-byte LE length = 8 + len(payload)]
//	[4-byte LE CRC-32 (IEEE) of seq+payload]
//	[8-byte LE sequence number]
//	[payload]
//
// Sequence numbers increase by exactly one per record across snapshot
// truncations, which makes every crash window idempotent: a snapshot
// records the sequence number it covers, and replay skips WAL records
// at or below it (so a crash between the snapshot rename and the WAL
// truncation replays nothing twice).
//
// Recovery rules: a record that runs past the end of the file, or whose
// checksum fails on the *final* record, is a torn tail — the crash
// interrupted the last append — and is dropped and truncated away. A
// checksum failure or sequence break anywhere earlier is corruption,
// and Open refuses the directory rather than silently losing committed
// state (ErrCorrupt).
//
// Fsync policy:
//
//	always    write(2) + fsync(2) per append — survives power loss.
//	          Concurrent appenders join a commit cohort (group commit):
//	          one leader performs a single write+fsync for the whole
//	          batch while followers block on its completion, so the
//	          fsync cost is amortized across committers without
//	          weakening the per-append durability guarantee.
//	interval  write(2) per append, fsync on a timer — survives SIGKILL,
//	          may lose the last interval on power loss
//	off       buffered in-process, flushed on snapshot/sync/close —
//	          survives a clean shutdown only; fastest
//
// Any write or fsync failure — including an interval-mode timer fsync —
// fails the ledger closed: every subsequent Append is refused, because a
// torn tail buried under a later successful append would read back as
// mid-file corruption instead of a recoverable crash.
package ledger

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"
)

// ErrCorrupt reports a WAL whose middle is damaged; recovery refuses to
// proceed past it because records after the damage may depend on the
// lost one.
var ErrCorrupt = errors.New("ledger: corrupt WAL")

// ErrClosed is returned by operations on a closed ledger.
var ErrClosed = errors.New("ledger: closed")

// ErrTruncated is returned by ReadEntries when the requested sequence
// number has been truncated away by a snapshot: the records below the
// snapshot horizon are gone, and a shipper must install the snapshot
// and resume from snapSeq+1.
var ErrTruncated = errors.New("ledger: requested records truncated by snapshot")

// On-disk names inside the ledger directory.
const (
	walName      = "wal.log"
	snapshotName = "snapshot.json"
)

// frameHeaderLen is length + checksum (the seq is covered by length).
const frameHeaderLen = 8

// maxRecordLen bounds a single record (seq + payload). Lengths beyond
// it cannot be produced by Append and are treated as corruption.
const maxRecordLen = 64 << 20

// FsyncMode selects the append durability policy.
type FsyncMode int

// Fsync policies, strongest first.
const (
	FsyncAlways FsyncMode = iota
	FsyncInterval
	FsyncOff
)

// String implements fmt.Stringer.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("fsync(%d)", int(m))
	}
}

// ParseFsyncMode parses the -fsync flag values always|interval|off.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("ledger: unknown fsync mode %q (want always|interval|off)", s)
}

// Options configures Open.
type Options struct {
	// Dir is the ledger directory; created if absent.
	Dir string
	// Fsync is the append durability policy.
	Fsync FsyncMode
	// FsyncInterval is the timer period for FsyncInterval mode;
	// defaults to 100ms.
	FsyncInterval time.Duration
	// NoGroupCommit disables commit-cohort batching in FsyncAlways mode,
	// reverting to one write+fsync per append. Group commit never weakens
	// durability — Append still returns only after its record is synced —
	// so this exists for benchmarking the amortization and bisection.
	NoGroupCommit bool
	// Logger receives recovery and snapshot diagnostics; nil discards.
	Logger *slog.Logger
}

// Entry is one replayed WAL record.
type Entry struct {
	Seq  uint64
	Data []byte
}

// Recovery reports what Open restored.
type Recovery struct {
	// SnapshotSeq is the sequence number the loaded snapshot covers; 0
	// when no snapshot existed.
	SnapshotSeq uint64
	// Snapshot is the raw snapshot state, nil when none existed.
	Snapshot []byte
	// Entries are the WAL records after the snapshot, in order.
	Entries []Entry
	// TornTail reports that a partial final record was dropped.
	TornTail bool
}

// Replayed is the number of WAL records handed back for replay.
func (r *Recovery) Replayed() int { return len(r.Entries) }

// Ledger is an open WAL + snapshot directory. Appends are serialized
// internally; callers typically also serialize them under their own
// state lock so the WAL order equals the commit order.
type Ledger struct {
	dir    string
	mode   FsyncMode
	logger *slog.Logger
	group  bool // batch concurrent FsyncAlways appends into commit cohorts

	// syncMu serializes batch I/O — cohort flushes, Sync, Close, and
	// snapshot truncation — against the group-commit leader, which
	// writes outside l.mu. Lock order: syncMu before mu, never the
	// reverse.
	syncMu sync.Mutex

	// truncMu excludes WAL truncation (snapshot commit, Reset) from
	// in-process readers: ReadEntries holds it shared while reading the
	// file outside l.mu, so a shipper never observes the file shrinking
	// mid-scan. Lock order: syncMu before truncMu before mu.
	truncMu sync.RWMutex

	mu        sync.Mutex
	f         *os.File
	buf       []byte // pending unwritten frames in FsyncOff mode
	pending   []byte // frames awaiting the open cohort's flush (group commit)
	spare     []byte // recycled pending buffer from the last flushed cohort
	cohort    *cohort
	seq       uint64 // last assigned sequence number
	snapSeq   uint64 // sequence number covered by the snapshot file
	size      int64  // bytes of complete frames in the WAL file
	dirty     bool   // unsynced writes (FsyncInterval)
	failed    bool   // a write failed; the tail may be torn, refuse appends
	failedErr error  // the error that failed the ledger closed
	closed    bool
	hook      func(seq uint64)
	hookGate  chan struct{} // closed once the newest append's hook has run
	syncFault func() error  // test hook: injected fsync failure (set before use)

	snapErr   error     // last background/explicit snapshot failure, nil after success
	snapErrAt time.Time // when snapErr was recorded

	stop   chan struct{}
	exited chan struct{}
}

// cohort is one group-commit batch: the appends accumulated in
// l.pending while a flush was in flight (or about to start). The
// appender that opens a cohort is its leader and performs the single
// write+fsync for every member; followers block on done and share err.
// An error fails the whole cohort — and the ledger — closed.
type cohort struct {
	done chan struct{}
	err  error
	n    int // records in the batch
}

// WALPath returns the WAL file path inside a ledger directory.
func WALPath(dir string) string { return filepath.Join(dir, walName) }

// SnapshotPath returns the snapshot file path inside a ledger directory.
func SnapshotPath(dir string) string { return filepath.Join(dir, snapshotName) }

// snapshotFile is the snapshot.json schema: the covered sequence number
// plus the owner's opaque (but JSON) state document.
type snapshotFile struct {
	Seq   uint64          `json:"seq"`
	State json.RawMessage `json:"state"`
}

// Open opens (or creates) a ledger directory, returning the recovered
// snapshot and WAL tail. The caller must restore the snapshot and apply
// the entries before issuing new appends.
func Open(o Options) (*Ledger, *Recovery, error) {
	if o.Dir == "" {
		return nil, nil, errors.New("ledger: no directory")
	}
	logger := o.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))
	}
	if err := os.MkdirAll(o.Dir, 0o700); err != nil {
		return nil, nil, fmt.Errorf("ledger: %w", err)
	}
	// A leftover .tmp is a snapshot that never committed; discard it.
	_ = os.Remove(SnapshotPath(o.Dir) + ".tmp")

	rec := &Recovery{}
	if raw, err := os.ReadFile(SnapshotPath(o.Dir)); err == nil {
		var sf snapshotFile
		if err := json.Unmarshal(raw, &sf); err != nil {
			return nil, nil, fmt.Errorf("%w: snapshot: %v", ErrCorrupt, err)
		}
		rec.SnapshotSeq = sf.Seq
		rec.Snapshot = sf.State
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("ledger: %w", err)
	}

	f, err := os.OpenFile(WALPath(o.Dir), os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, nil, fmt.Errorf("ledger: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ledger: %w", err)
	}

	l := &Ledger{
		dir:     o.Dir,
		mode:    o.Fsync,
		logger:  logger,
		group:   o.Fsync == FsyncAlways && !o.NoGroupCommit,
		f:       f,
		snapSeq: rec.SnapshotSeq,
		seq:     rec.SnapshotSeq,
	}
	if err := l.scan(data, rec); err != nil {
		f.Close()
		return nil, nil, err
	}
	if int64(len(data)) != l.size {
		// Torn tail (or trailing junk after the last good frame):
		// truncate so the next append starts on a frame boundary.
		mTornTails.Inc()
		rec.TornTail = true
		logger.Warn("ledger: dropping torn WAL tail",
			"dir", o.Dir, "validBytes", l.size, "fileBytes", len(data))
		if err := f.Truncate(l.size); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ledger: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(l.size, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ledger: %w", err)
	}
	mReplayRecords.Add(uint64(len(rec.Entries)))
	if rec.SnapshotSeq > 0 || len(rec.Entries) > 0 {
		logger.Info("ledger recovered", "dir", o.Dir,
			"snapshotSeq", rec.SnapshotSeq, "replayed", len(rec.Entries),
			"tornTail", rec.TornTail)
	}

	if o.Fsync == FsyncInterval {
		iv := o.FsyncInterval
		if iv <= 0 {
			iv = 100 * time.Millisecond
		}
		l.stop = make(chan struct{})
		l.exited = make(chan struct{})
		go l.syncLoop(iv)
	}
	return l, rec, nil
}

// scanFrames walks the WAL frames in data, calling fn for each
// complete, checksum-valid record, and returns the byte length of the
// valid prefix. A partial final frame — or a checksum failure on the
// final frame — is a torn tail: the walk stops there without error.
// Damage anywhere earlier returns ErrCorrupt.
func scanFrames(data []byte, fn func(seq uint64, payload []byte)) (int64, error) {
	off := 0
	var prevSeq uint64
	var size int64
	for off < len(data) {
		if len(data)-off < frameHeaderLen {
			break // torn: partial header at EOF
		}
		length := binary.LittleEndian.Uint32(data[off:])
		if length < 8 || length > maxRecordLen {
			// Append-only writes tear by losing a suffix, never by
			// garbling an earlier byte — an impossible length is
			// corruption, not a torn tail.
			return size, fmt.Errorf("%w: impossible record length %d at offset %d", ErrCorrupt, length, off)
		}
		end := off + frameHeaderLen + int(length)
		if end > len(data) {
			break // torn: record runs past EOF
		}
		sum := binary.LittleEndian.Uint32(data[off+4:])
		body := data[off+frameHeaderLen : end]
		if crc32.ChecksumIEEE(body) != sum {
			if end == len(data) {
				// A final record of full length with a bad checksum can
				// happen when power loss persists pages out of order;
				// it is still the tail, so drop it.
				break
			}
			return size, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		seq := binary.LittleEndian.Uint64(body)
		if prevSeq != 0 && seq != prevSeq+1 {
			return size, fmt.Errorf("%w: sequence break %d -> %d at offset %d", ErrCorrupt, prevSeq, seq, off)
		}
		prevSeq = seq
		if fn != nil {
			fn(seq, body[8:])
		}
		off = end
		size = int64(off)
	}
	return size, nil
}

// scan walks the WAL frames in data, filling rec.Entries with records
// past the snapshot and leaving l.size at the end of the last complete
// frame and l.seq at the last sequence number seen.
func (l *Ledger) scan(data []byte, rec *Recovery) error {
	size, err := scanFrames(data, func(seq uint64, payload []byte) {
		if seq > l.seq {
			l.seq = seq
		}
		if seq > l.snapSeq {
			p := make([]byte, len(payload))
			copy(p, payload)
			rec.Entries = append(rec.Entries, Entry{Seq: seq, Data: p})
		}
	})
	l.size = size
	return err
}

// scanRetries is how many times the by-path readers re-read a file
// that scans as corrupt before believing the corruption: a concurrent
// snapshot truncation can rewrite the WAL under os.ReadFile, splicing
// old and new bytes into a frankenread that fails checksums even
// though both the before- and after-files are healthy. Real corruption
// is stable across re-reads (the content no longer changes), so the
// retry loop converges on the truth either way.
const scanRetries = 3

// readConsistent reads path, re-reading when the content scans as
// corrupt but is still changing between reads (a racing truncation).
// verify parses one read's bytes; its error is returned only once the
// content is stable or the retry budget is exhausted.
func readConsistent(path string, verify func(data []byte) error) error {
	var prev []byte
	for attempt := 0; ; attempt++ {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		verr := verify(data)
		if verr == nil || !errors.Is(verr, ErrCorrupt) {
			return verr
		}
		if attempt > 0 && bytes.Equal(data, prev) {
			return verr // stable content: genuinely corrupt
		}
		if attempt >= scanRetries {
			return verr
		}
		prev = data
		time.Sleep(time.Millisecond)
	}
}

// VerifyWAL re-walks a WAL file's frames — lengths, checksums, dense
// sequence numbers — without opening a ledger. It returns the number of
// intact records and whether trailing bytes past the last intact frame
// were found (a torn tail, which recovery would drop). Damage anywhere
// before the tail returns ErrCorrupt. A concurrent snapshot truncation
// by a live ledger in another process (or goroutine) is tolerated: the
// file is re-read until the content is stable, so a mid-truncation
// frankenread is never misreported as corruption.
func VerifyWAL(path string) (records int, torn bool, err error) {
	err = readConsistent(path, func(data []byte) error {
		records, torn = 0, false
		size, serr := scanFrames(data, func(uint64, []byte) { records++ })
		if serr != nil {
			return serr
		}
		torn = size != int64(len(data))
		return nil
	})
	if err != nil {
		return records, false, err
	}
	return records, torn, nil
}

// SetAppendHook installs a function called after every successful
// append (outside the ledger lock) with the record's sequence number.
// Hooks are delivered in sequence order even when appends commit
// concurrently through a cohort: each append waits for its
// predecessor's hook to finish before invoking its own, so a hook
// observing seq N has already observed 1..N-1 (WAL shipping depends on
// this). Used by crash tests to die at the worst possible moments; nil
// removes it.
func (l *Ledger) SetAppendHook(fn func(seq uint64)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hook = fn
}

// LastSeq returns the last assigned sequence number.
func (l *Ledger) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// SnapshotSeq returns the sequence number covered by the snapshot file.
func (l *Ledger) SnapshotSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapSeq
}

// NeedsSnapshot reports whether WAL records exist past the snapshot.
func (l *Ledger) NeedsSnapshot() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq > l.snapSeq
}

// appendFrame encodes one WAL frame for (seq, payload) onto dst.
func appendFrame(dst []byte, seq uint64, payload []byte) []byte {
	need := frameHeaderLen + 8 + len(payload)
	off := len(dst)
	if cap(dst)-off < need {
		grown := make([]byte, off, 2*cap(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	f := dst[off:]
	binary.LittleEndian.PutUint32(f, uint32(8+len(payload)))
	binary.LittleEndian.PutUint64(f[frameHeaderLen:], seq)
	copy(f[frameHeaderLen+8:], payload)
	binary.LittleEndian.PutUint32(f[4:], crc32.ChecksumIEEE(f[frameHeaderLen:]))
	return dst
}

// Append commits one record, returning its sequence number. The record
// is on its way to disk (per the fsync policy) before Append returns;
// callers apply the in-memory mutation only after a successful Append.
//
// Under FsyncAlways with group commit, concurrent callers share one
// write+fsync: the caller that opens a cohort leads it, everyone who
// joins before the leader swaps the batch out rides along, and all of
// them block until the cohort's single fsync completes (or fails, which
// fails every member and the ledger itself).
func (l *Ledger) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.failed {
		cause := l.failedErr
		l.mu.Unlock()
		mAppendErrors.Inc()
		if cause != nil {
			return 0, fmt.Errorf("ledger: append after earlier write failure: %w", cause)
		}
		return 0, fmt.Errorf("ledger: append after earlier write failure")
	}
	l.seq++
	seq := l.seq
	frameLen := frameHeaderLen + 8 + len(payload)

	var err error
	var c *cohort
	var leader bool
	switch {
	case l.mode == FsyncOff:
		l.buf = appendFrame(l.buf, seq, payload)
	case l.mode == FsyncAlways && l.group:
		if l.pending == nil && l.spare != nil {
			l.pending, l.spare = l.spare[:0], nil
		}
		l.pending = appendFrame(l.pending, seq, payload)
		if l.cohort == nil {
			l.cohort = &cohort{done: make(chan struct{})}
			leader = true
		}
		c = l.cohort
		c.n++
	default:
		frame := appendFrame(nil, seq, payload)
		_, err = l.f.Write(frame)
		if err == nil {
			l.size += int64(len(frame))
			if l.mode == FsyncAlways {
				err = l.syncLocked()
			} else {
				l.dirty = true
			}
		}
	}
	if err != nil {
		// The tail may hold a partial frame now; recovery treats it as
		// torn, but a *successful* later append would bury it mid-file
		// as corruption — so fail the ledger instead.
		l.failed = true
		l.failedErr = err
		mAppendErrors.Inc()
		l.mu.Unlock()
		return 0, fmt.Errorf("ledger: append: %w", err)
	}
	// In-order hook delivery: chain one gate per hooked append so hooks
	// fire in sequence order even when cohort members return
	// concurrently.
	hook := l.hook
	var prevGate, gate chan struct{}
	if hook != nil {
		prevGate = l.hookGate
		gate = make(chan struct{})
		l.hookGate = gate
	}
	l.mu.Unlock()

	if c != nil {
		if leader {
			l.flushCohort(c)
		} else {
			<-c.done
		}
		err = c.err
	}
	if gate != nil {
		// Wait out the predecessor's hook so delivery order equals
		// sequence order; always release our own gate — even on a
		// cohort failure — or later appends would block forever.
		if prevGate != nil {
			<-prevGate
		}
		if err == nil {
			hook(seq)
		}
		close(gate)
	}
	if err != nil {
		mAppendErrors.Inc()
		return 0, fmt.Errorf("ledger: append: %w", err)
	}
	mAppends.Inc()
	mAppendBytes.Add(uint64(frameLen))
	return seq, nil
}

// flushCohort writes and fsyncs every frame accumulated for c, as its
// leader. The batch swap happens under l.mu — frame accumulation and
// cohort membership are updated atomically by Append, so the swapped
// batch holds exactly the cohort's records — while the write+fsync
// happens under syncMu only, letting the next cohort form concurrently.
func (l *Ledger) flushCohort(c *cohort) {
	start := time.Now()
	l.syncMu.Lock()
	defer l.syncMu.Unlock()

	// Join window: appenders released by the previous flush are racing
	// to rejoin right now. Seal the batch only once membership stops
	// growing (bounded scheduler yields, no clock), so steady-state
	// batches approach the full set of concurrent committers instead of
	// alternating halves of it. A lone appender breaks out after one
	// yield — nanoseconds next to the fsync it is about to pay.
	prev := 0
	for spins := 0; spins < 64; spins++ {
		l.mu.Lock()
		n := c.n
		l.mu.Unlock()
		if n == prev {
			break
		}
		prev = n
		runtime.Gosched()
	}

	l.mu.Lock()
	batch := l.pending
	l.pending = nil
	l.cohort = nil // appends from here on open the next cohort
	f := l.f
	l.mu.Unlock()

	_, err := f.Write(batch)
	if err == nil {
		err = l.fsync(f)
	}

	l.mu.Lock()
	if err != nil {
		l.failed = true
		if l.failedErr == nil {
			l.failedErr = err
		}
	} else {
		l.size += int64(len(batch))
		if cap(batch) > cap(l.spare) {
			l.spare = batch[:0]
		}
	}
	l.mu.Unlock()

	c.err = err
	close(c.done)
	mGroupCommitBatches.Inc()
	mGroupCommitRecords.Observe(float64(c.n))
	mGroupCommitSeconds.Observe(time.Since(start).Seconds())
}

// flushLocked writes buffered FsyncOff frames to the file.
func (l *Ledger) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	n, err := l.f.Write(l.buf)
	if err != nil {
		l.failed = true
		l.failedErr = err
		return err
	}
	l.size += int64(n)
	l.buf = l.buf[:0]
	return nil
}

// fsync syncs f, timing the call and consulting the injected test
// fault. Callers own whatever lock discipline their path requires.
func (l *Ledger) fsync(f *os.File) error {
	start := time.Now()
	err := f.Sync()
	mFsyncSeconds.Observe(time.Since(start).Seconds())
	if err == nil && l.syncFault != nil {
		err = l.syncFault()
	}
	return err
}

// syncLocked fsyncs the WAL file, timing the call.
func (l *Ledger) syncLocked() error {
	err := l.fsync(l.f)
	l.dirty = false
	return err
}

// Sync flushes buffered frames and fsyncs the WAL. Frames owned by an
// in-flight commit cohort are not touched — their cohort's leader is
// responsible for them, and Append returns only once they are durable.
func (l *Ledger) Sync() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	if err := l.syncLocked(); err != nil {
		l.failed = true
		if l.failedErr == nil {
			l.failedErr = err
		}
		return err
	}
	return nil
}

// syncLoop is the FsyncInterval timer.
func (l *Ledger) syncLoop(interval time.Duration) {
	defer close(l.exited)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty && !l.failed {
				if err := l.syncLocked(); err != nil {
					// The unsynced tail may be torn on disk now; a later
					// successful append would bury it mid-file as
					// corruption. Fail the ledger closed — the documented
					// contract — rather than only logging.
					l.failed = true
					l.failedErr = err
					l.logger.Error("ledger: interval fsync failed; ledger fails closed", "err", err)
				}
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// WriteSnapshot atomically commits a full-state snapshot covering seq
// (the owner captures state and its ledger's LastSeq under one lock so
// they agree). The WAL is truncated when — and only when — no records
// past seq exist; otherwise it is kept and replay relies on sequence
// numbers to skip the records the snapshot already covers.
func (l *Ledger) WriteSnapshot(state []byte, seq uint64) error {
	start := time.Now()
	err := l.writeSnapshot(state, seq)
	mSnapshotSeconds.Observe(time.Since(start).Seconds())
	l.noteSnapshot(err)
	if err != nil {
		mSnapshots.With("error").Inc()
		return err
	}
	mSnapshots.With("ok").Inc()
	mSnapshotBytes.Set(int64(len(state)))
	return nil
}

// commitSnapshotLocked writes raw to snapshot.json.tmp (fsynced unless
// the policy is off) and renames it into place. Callers hold l.mu.
func (l *Ledger) commitSnapshotLocked(raw []byte) error {
	path := SnapshotPath(l.dir)
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("ledger: snapshot: %w", err)
	}
	if _, err := tf.Write(raw); err != nil {
		tf.Close()
		return fmt.Errorf("ledger: snapshot: %w", err)
	}
	if l.mode != FsyncOff {
		if err := tf.Sync(); err != nil {
			tf.Close()
			return fmt.Errorf("ledger: snapshot: %w", err)
		}
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("ledger: snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("ledger: snapshot: %w", err)
	}
	return nil
}

// truncateWALLocked discards the WAL file and any buffered frames.
// Callers hold truncMu exclusively (no reader is mid-scan) and l.mu.
func (l *Ledger) truncateWALLocked() error {
	l.buf = l.buf[:0]
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("ledger: truncate WAL: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	l.size = 0
	l.dirty = false
	return nil
}

func (l *Ledger) writeSnapshot(state []byte, seq uint64) error {
	raw, err := json.Marshal(snapshotFile{Seq: seq, State: state})
	if err != nil {
		return fmt.Errorf("ledger: snapshot: %w", err)
	}
	// syncMu first: a group-commit leader may be mid-write outside l.mu,
	// and truncating underneath it would corrupt the WAL. truncMu next:
	// an in-process reader (ReadEntries) may be mid-scan of the file
	// outside l.mu, and truncating underneath it would make a healthy
	// WAL read as corrupt.
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.truncMu.Lock()
	defer l.truncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.commitSnapshotLocked(raw); err != nil {
		return err
	}
	if seq > l.snapSeq {
		l.snapSeq = seq
	}
	if l.seq == seq && !l.failed && len(l.pending) == 0 {
		// Nothing appended past the snapshot: the whole WAL (and any
		// buffered frames, all covered by the state we just committed)
		// can go. A crash before the truncate is harmless — replay
		// skips records at or below snapSeq. Frames still pending for a
		// forming cohort are not covered by the snapshot and keep the
		// WAL alive.
		if err := l.truncateWALLocked(); err != nil {
			return err
		}
	}
	l.logger.Debug("ledger snapshot committed", "dir", l.dir, "seq", seq, "bytes", len(state))
	return nil
}

// Reset installs an externally supplied snapshot — replication catch-up
// handing a lagging standby the primary's state. It commits the
// snapshot file, unconditionally truncates the WAL (every record it
// held is covered or superseded by the installed state), and
// fast-forwards the sequence counter to seq. The caller must have
// replaced its in-memory state to match and must not be appending
// concurrently.
func (l *Ledger) Reset(state []byte, seq uint64) error {
	raw, err := json.Marshal(snapshotFile{Seq: seq, State: state})
	if err != nil {
		return fmt.Errorf("ledger: reset: %w", err)
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.truncMu.Lock()
	defer l.truncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return fmt.Errorf("ledger: reset after earlier write failure: %w", l.failedErr)
	}
	if l.cohort != nil || len(l.pending) > 0 {
		return errors.New("ledger: reset with in-flight appends")
	}
	if err := l.commitSnapshotLocked(raw); err != nil {
		return err
	}
	if err := l.truncateWALLocked(); err != nil {
		return err
	}
	l.seq = seq
	l.snapSeq = seq
	l.logger.Info("ledger reset to installed snapshot", "dir", l.dir, "seq", seq, "bytes", len(state))
	return nil
}

// maxSnapshotBackoffTicks caps the failure backoff: after repeated
// failures the snapshotter still probes every 64 intervals rather than
// never again.
const maxSnapshotBackoffTicks = 64

// snapshotBackoffTicks returns how many ticker intervals to skip after
// the n-th consecutive snapshot failure: 2, 4, 8, ... capped.
func snapshotBackoffTicks(failures int) int {
	if failures <= 0 {
		return 0
	}
	if failures >= 6 { // 2<<6 already exceeds the cap
		return maxSnapshotBackoffTicks
	}
	t := 1 << failures
	if t > maxSnapshotBackoffTicks {
		return maxSnapshotBackoffTicks
	}
	return t
}

// noteSnapshot records the outcome of a snapshot attempt for /healthz:
// a failure is remembered (with its time) until a later attempt
// succeeds.
func (l *Ledger) noteSnapshot(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.snapErr = err
		l.snapErrAt = time.Now()
	} else {
		l.snapErr = nil
		l.snapErrAt = time.Time{}
	}
}

// LastSnapshotError returns the most recent snapshot failure and when
// it happened; nil after a success (or before any attempt).
func (l *Ledger) LastSnapshotError() (error, time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapErr, l.snapErrAt
}

// Health returns a /healthz document fragment: sequence positions,
// fail-closed state, and the last background snapshot failure if one is
// outstanding — so a disk-full snapshotter is visible to probes instead
// of only to the log.
func (l *Ledger) Health() map[string]any {
	l.mu.Lock()
	defer l.mu.Unlock()
	h := map[string]any{
		"ledgerLastSeq":     l.seq,
		"ledgerSnapshotSeq": l.snapSeq,
		"ledgerFailed":      l.failed,
	}
	if l.failedErr != nil {
		h["ledgerFailedError"] = l.failedErr.Error()
	}
	if l.snapErr != nil {
		h["ledgerLastSnapshotError"] = l.snapErr.Error()
		h["ledgerLastSnapshotErrorAt"] = l.snapErrAt.UTC().Format(time.RFC3339Nano)
	}
	return h
}

// StartSnapshotter runs snapshot (typically the owning server's
// SnapshotNow) every interval while new WAL records exist. Repeated
// failures back off exponentially — skipping 2, 4, ... up to 64 ticks —
// so a persistent fault (disk full) does not flood the log at full tick
// rate; the last failure is surfaced via Health/LastSnapshotError. The
// returned stop function halts it and waits for exit; calling it twice
// is safe.
func (l *Ledger) StartSnapshotter(interval time.Duration, snapshot func() error) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		failures, skip := 0, 0
		for {
			select {
			case <-t.C:
				if skip > 0 {
					skip--
					continue
				}
				if !l.NeedsSnapshot() {
					continue
				}
				if err := snapshot(); err != nil {
					failures++
					skip = snapshotBackoffTicks(failures)
					l.noteSnapshot(err)
					l.logger.Error("ledger: background snapshot failed",
						"err", err, "consecutiveFailures", failures, "backoffTicks", skip)
				} else {
					failures, skip = 0, 0
					l.noteSnapshot(nil)
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}

// Close flushes buffered frames (and fsyncs unless the policy is off)
// and closes the WAL. Close waits for any in-flight commit cohort to
// finish its flush; appends still forming a cohort when Close lands
// fail (their leader finds the file closed) rather than racing it.
func (l *Ledger) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.exited
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushLocked()
	if err == nil && l.mode != FsyncOff {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// RecordPos locates one WAL record: its sequence number and the file
// offset just past its frame. Crash-recovery tests use it to truncate a
// WAL copy at every record boundary.
type RecordPos struct {
	Seq uint64
	End int64
}

// ScanOffsets parses a WAL file (without a ledger) and returns every
// complete record's position, in order. Like VerifyWAL it tolerates a
// concurrent snapshot truncation by re-reading until the content is
// stable.
func ScanOffsets(path string) ([]RecordPos, error) {
	var out []RecordPos
	err := readConsistent(path, func(data []byte) error {
		out = out[:0]
		off := 0
		for off < len(data) {
			if len(data)-off < frameHeaderLen {
				break
			}
			length := binary.LittleEndian.Uint32(data[off:])
			if length < 8 || length > maxRecordLen {
				return fmt.Errorf("%w: impossible record length %d at offset %d", ErrCorrupt, length, off)
			}
			end := off + frameHeaderLen + int(length)
			if end > len(data) {
				break
			}
			out = append(out, RecordPos{
				Seq: binary.LittleEndian.Uint64(data[off+frameHeaderLen:]),
				End: int64(end),
			})
			off = end
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CursorResult is one ReadEntries read: the records found plus the
// sequence horizons that were current when the read began, so a
// shipper can compute lag and detect truncation races exactly once.
type CursorResult struct {
	// Entries are the records with sequence numbers in [from, from+max),
	// in order; empty when the caller is at the tip.
	Entries []Entry
	// SnapSeq is the snapshot horizon: records at or below it may be
	// truncated away at any time.
	SnapSeq uint64
	// LastSeq is the last record visible to this read — durable frames
	// plus (in FsyncOff mode) buffered ones. Records still waiting on an
	// in-flight commit cohort are excluded: a shipper must never ship a
	// record whose Append has not yet succeeded.
	LastSeq uint64
}

// ReadEntries is the shipping cursor: it returns up to max records with
// sequence numbers >= from, reading the live WAL without racing
// snapshot truncation (it holds the truncation guard shared, so
// WriteSnapshot waits rather than rewriting the file mid-scan). When
// from falls below the snapshot horizon and the records are gone,
// ReadEntries returns ErrTruncated with the horizon in CursorResult —
// the caller fetches a snapshot and resumes from SnapSeq+1.
func (l *Ledger) ReadEntries(from uint64, max int) (CursorResult, error) {
	if max <= 0 {
		max = 1 << 10
	}
	l.truncMu.RLock()
	defer l.truncMu.RUnlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return CursorResult{}, ErrClosed
	}
	size := l.size
	snapSeq := l.snapSeq
	f := l.f
	var buffered []byte
	if len(l.buf) > 0 {
		buffered = append([]byte(nil), l.buf...)
	}
	l.mu.Unlock()

	// The file region [0, size) is immutable while we hold truncMu
	// shared: appends only extend the file past size, and truncation
	// waits on the guard. A group-commit leader may be writing past
	// size right now — those frames belong to appends that have not
	// returned yet and are deliberately not visible to this read.
	data := make([]byte, size, size+int64(len(buffered)))
	if size > 0 {
		if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
			return CursorResult{}, fmt.Errorf("ledger: cursor read: %w", err)
		}
	}
	data = append(data, buffered...)

	res := CursorResult{SnapSeq: snapSeq, LastSeq: snapSeq}
	firstSeen := uint64(0)
	_, err := scanFrames(data, func(seq uint64, payload []byte) {
		if firstSeen == 0 {
			firstSeen = seq
		}
		if seq > res.LastSeq {
			res.LastSeq = seq
		}
		if seq >= from && len(res.Entries) < max {
			res.Entries = append(res.Entries, Entry{Seq: seq, Data: payload})
		}
	})
	if err != nil {
		return CursorResult{}, err
	}
	// Records below the requested point that are no longer on disk are
	// unreachable by shipping; the caller must catch up via snapshot.
	// (from == firstSeen or later is servable; from past the tip is an
	// empty read, not an error.)
	lowest := snapSeq + 1
	if firstSeen != 0 && firstSeen < lowest {
		lowest = firstSeen
	}
	if from < lowest {
		return res, ErrTruncated
	}
	return res, nil
}
