package ledger

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReadEntriesTailsLiveWAL drives the shipping cursor over a live
// ledger: every appended record is readable, in order, with correct
// horizons.
func TestReadEntriesTailsLiveWAL(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			l, _ := openT(t, t.TempDir(), mode)
			defer l.Close()
			for i := 0; i < 20; i++ {
				appendT(t, l, fmt.Sprintf("r%d", i))
			}
			res, err := l.ReadEntries(1, 0)
			if err != nil {
				t.Fatalf("ReadEntries: %v", err)
			}
			if len(res.Entries) != 20 || res.LastSeq != 20 || res.SnapSeq != 0 {
				t.Fatalf("got %d entries, last %d, snap %d", len(res.Entries), res.LastSeq, res.SnapSeq)
			}
			for i, e := range res.Entries {
				if e.Seq != uint64(i+1) || string(e.Data) != fmt.Sprintf("r%d", i) {
					t.Fatalf("entry %d: seq %d data %q", i, e.Seq, e.Data)
				}
			}
			// Bounded batch, offset start.
			res, err = l.ReadEntries(11, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Entries) != 5 || res.Entries[0].Seq != 11 || res.Entries[4].Seq != 15 {
				t.Fatalf("batch read wrong: %+v", res.Entries)
			}
			// Reading at the tip is an empty read, not an error.
			res, err = l.ReadEntries(21, 0)
			if err != nil || len(res.Entries) != 0 {
				t.Fatalf("tip read: %d entries, err %v", len(res.Entries), err)
			}
		})
	}
}

// TestReadEntriesTruncatedReportsSnapshotNeeded pins the catch-up
// contract: once a snapshot truncates the WAL, a cursor positioned
// below the horizon gets ErrTruncated plus the horizon to resume from.
func TestReadEntriesTruncatedReportsSnapshotNeeded(t *testing.T) {
	l, _ := openT(t, t.TempDir(), FsyncAlways)
	defer l.Close()
	for i := 0; i < 10; i++ {
		appendT(t, l, fmt.Sprintf("r%d", i))
	}
	if err := l.WriteSnapshot([]byte(`{"covers":10}`), 10); err != nil {
		t.Fatal(err)
	}
	// WAL is gone; a lagging cursor must be told to fetch the snapshot.
	res, err := l.ReadEntries(5, 0)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadEntries(5) after truncation: err %v, want ErrTruncated", err)
	}
	if res.SnapSeq != 10 {
		t.Fatalf("SnapSeq %d, want 10", res.SnapSeq)
	}
	// Resuming from the horizon works and sees post-snapshot appends.
	appendT(t, l, "after")
	res, err = l.ReadEntries(res.SnapSeq+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].Seq != 11 || string(res.Entries[0].Data) != "after" {
		t.Fatalf("post-snapshot read: %+v", res.Entries)
	}
}

// TestReadEntriesExcludesUnackedCohort ships only records whose Append
// has returned: frames parked in a forming group-commit cohort are
// invisible to the cursor.
func TestReadEntriesExcludesUnackedCohort(t *testing.T) {
	l, _ := openT(t, t.TempDir(), FsyncAlways)
	defer l.Close()
	appendT(t, l, "durable")

	// Simulate a forming cohort: frames in l.pending are not yet synced.
	l.mu.Lock()
	l.pending = appendFrame(l.pending, 99, []byte("unacked"))
	l.mu.Unlock()
	res, err := l.ReadEntries(1, 0)
	l.mu.Lock()
	l.pending = nil
	l.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.LastSeq != 1 {
		t.Fatalf("cursor saw unacked cohort frames: %+v last %d", res.Entries, res.LastSeq)
	}
}

// TestScanDuringSnapshotNotMisreportedAsCorrupt is the satellite-1
// regression test: by-path readers (VerifyWAL, ScanOffsets) and the
// in-process cursor run flat out while the owner appends and snapshots
// (truncating the WAL under them); no reader may ever misreport a
// healthy ledger as corrupt.
func TestScanDuringSnapshotNotMisreportedAsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncInterval)
	defer l.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(3)
	go func() { // by-path verifier
		defer wg.Done()
		for !stop.Load() {
			if _, _, err := VerifyWAL(WALPath(dir)); err != nil {
				errs <- fmt.Errorf("VerifyWAL: %w", err)
				return
			}
		}
	}()
	go func() { // by-path offset scanner
		defer wg.Done()
		for !stop.Load() {
			if _, err := ScanOffsets(WALPath(dir)); err != nil {
				errs <- fmt.Errorf("ScanOffsets: %w", err)
				return
			}
		}
	}()
	go func() { // in-process shipping cursor
		defer wg.Done()
		var from uint64 = 1
		for !stop.Load() {
			res, err := l.ReadEntries(from, 64)
			if err != nil {
				if errors.Is(err, ErrTruncated) {
					from = res.SnapSeq + 1 // catch up past the snapshot
					continue
				}
				errs <- fmt.Errorf("ReadEntries: %w", err)
				return
			}
			if n := len(res.Entries); n > 0 {
				// Shipped batches are dense and in order.
				for i, e := range res.Entries {
					if e.Seq != from+uint64(i) {
						errs <- fmt.Errorf("cursor gap: got seq %d at %d (from %d)", e.Seq, i, from)
						return
					}
				}
				from += uint64(n)
			}
		}
	}()

	deadline := time.Now().Add(700 * time.Millisecond)
	payload := []byte("snapshot-scan-race-payload")
	for time.Now().Before(deadline) {
		for i := 0; i < 8; i++ {
			if _, err := l.Append(payload); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		// Snapshot at the tip so the WAL truncates under the scanners.
		if err := l.WriteSnapshot([]byte(`{}`), l.LastSeq()); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestResetInstallsSnapshot pins Reset: state installed, WAL emptied,
// sequence fast-forwarded, and a reopen recovers the installed state.
func TestResetInstallsSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, FsyncAlways)
	for i := 0; i < 3; i++ {
		appendT(t, l, "pre-reset")
	}
	if err := l.Reset([]byte(`{"installed":true}`), 40); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.LastSeq() != 40 || l.SnapshotSeq() != 40 {
		t.Fatalf("after reset: last %d snap %d, want 40/40", l.LastSeq(), l.SnapshotSeq())
	}
	if seq := appendT(t, l, "post-reset"); seq != 41 {
		t.Fatalf("post-reset append seq %d, want 41", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, FsyncAlways)
	defer l2.Close()
	if rec.SnapshotSeq != 40 || string(rec.Snapshot) != `{"installed":true}` {
		t.Fatalf("recovered snapshot seq %d state %s", rec.SnapshotSeq, rec.Snapshot)
	}
	if rec.Replayed() != 1 || rec.Entries[0].Seq != 41 {
		t.Fatalf("recovered entries %+v", rec.Entries)
	}
}

// TestSnapshotterBacksOffOnFailure is the satellite-2 regression test:
// a persistently failing snapshot func is retried with exponential
// tick backoff (not at full tick rate), the failure is visible in
// Health, and a success resets both the backoff and the health doc.
func TestSnapshotterBacksOffOnFailure(t *testing.T) {
	l, _ := openT(t, t.TempDir(), FsyncAlways)
	defer l.Close()
	appendT(t, l, "make NeedsSnapshot true")

	var calls atomic.Int64
	fail := atomic.Bool{}
	fail.Store(true)
	boom := errors.New("disk full")
	stop := l.StartSnapshotter(time.Millisecond, func() error {
		calls.Add(1)
		if fail.Load() {
			return boom
		}
		return l.WriteSnapshot([]byte(`{}`), l.LastSeq())
	})
	defer stop()

	// ~120 ticks elapse; full-rate retry would attempt ~120 times, while
	// 2/4/8/... backoff stays in single digits.
	time.Sleep(120 * time.Millisecond)
	n := calls.Load()
	if n == 0 {
		t.Fatal("snapshotter never attempted a snapshot")
	}
	if n > 12 {
		t.Fatalf("failing snapshotter attempted %d times in ~120 ticks; backoff not working", n)
	}
	if err, at := l.LastSnapshotError(); !errors.Is(err, boom) || at.IsZero() {
		t.Fatalf("LastSnapshotError = (%v, %v), want the injected failure", err, at)
	}
	if h := l.Health(); h["ledgerLastSnapshotError"] != boom.Error() {
		t.Fatalf("healthz fragment missing snapshot error: %v", h)
	}

	// Recovery: the next successful attempt clears the error and resets
	// the backoff.
	fail.Store(false)
	waitUntil(t, 5*time.Second, func() bool {
		err, _ := l.LastSnapshotError()
		return err == nil && !l.NeedsSnapshot()
	})
	if h := l.Health(); h["ledgerLastSnapshotError"] != nil {
		t.Fatalf("healthz still reports a snapshot error after success: %v", h)
	}
}

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

// TestSnapshotBackoffTicks pins the backoff schedule itself.
func TestSnapshotBackoffTicks(t *testing.T) {
	want := map[int]int{0: 0, 1: 2, 2: 4, 3: 8, 4: 16, 5: 32, 6: 64, 7: 64, 100: 64}
	for failures, ticks := range want {
		if got := snapshotBackoffTicks(failures); got != ticks {
			t.Errorf("snapshotBackoffTicks(%d) = %d, want %d", failures, got, ticks)
		}
	}
}
