package ledger

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzWAL builds a valid n-record WAL image for the corpus.
func fuzzWAL(payloads ...[]byte) []byte {
	var out []byte
	for i, p := range payloads {
		body := make([]byte, 8+len(p))
		binary.LittleEndian.PutUint64(body, uint64(i+1))
		copy(body[8:], p)
		frame := make([]byte, frameHeaderLen+len(body))
		binary.LittleEndian.PutUint32(frame, uint32(len(body)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
		copy(frame[frameHeaderLen:], body)
		out = append(out, frame...)
	}
	return out
}

// FuzzReplayJournal drives the WAL frame scanner over arbitrary bytes:
// it must never panic, the valid-prefix length it reports must itself
// scan cleanly with the same record count, and a torn tail must never
// be confused with mid-file corruption.
func FuzzReplayJournal(f *testing.F) {
	valid := fuzzWAL([]byte("op-1"), []byte("op-2"), []byte("op-3"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn final frame
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1}) // impossible length
	corrupt := append([]byte{}, valid...)
	corrupt[frameHeaderLen+2] ^= 0x01 // flip a byte in record 1's body
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		records := 0
		size, err := scanFrames(data, func(uint64, []byte) { records++ })
		if size < 0 || size > int64(len(data)) {
			t.Fatalf("valid-prefix length %d out of range [0, %d]", size, len(data))
		}
		// The reported prefix must be exactly the valid frames seen:
		// re-scanning it alone yields the same records and no error.
		n2 := 0
		size2, err2 := scanFrames(data[:size], func(uint64, []byte) { n2++ })
		if err2 != nil || size2 != size || n2 != records {
			t.Fatalf("prefix re-scan: records %d->%d size %d->%d err=%v",
				records, n2, size, size2, err2)
		}
		if err == nil && size == int64(len(data)) && len(data) > 0 && records == 0 {
			t.Fatal("clean full-length scan produced no records from non-empty data")
		}

		// VerifyWAL agrees with the raw scan.
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		if werr := os.WriteFile(path, data, 0o600); werr != nil {
			t.Fatal(werr)
		}
		vrecords, torn, verr := VerifyWAL(path)
		if vrecords != records || (verr == nil) != (err == nil) {
			t.Fatalf("VerifyWAL (%d, %v) disagrees with scanFrames (%d, %v)",
				vrecords, verr, records, err)
		}
		if verr == nil && torn != (size != int64(len(data))) {
			t.Fatalf("torn=%v, but valid prefix is %d of %d bytes", torn, size, len(data))
		}
	})
}
