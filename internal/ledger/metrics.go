package ledger

import "proxykit/internal/obs"

// Ledger metrics. Process-global by design: a process typically runs
// one ledger-backed server, and the doc catalogue in OBSERVABILITY.md
// is keyed by metric name.
var (
	mAppends = obs.Default.NewCounter("proxykit_ledger_appends_total",
		"WAL records appended (one per committed mutation).")
	mAppendBytes = obs.Default.NewCounter("proxykit_ledger_append_bytes_total",
		"Bytes of WAL frames appended, headers included.")
	mAppendErrors = obs.Default.NewCounter("proxykit_ledger_append_errors_total",
		"WAL appends refused or failed; the ledger fails closed after the first write error.")
	mFsyncSeconds = obs.Default.NewHistogram("proxykit_ledger_fsync_seconds",
		"Latency of WAL fsync calls (always mode: one per append; interval mode: one per timer tick).",
		obs.DefLatencyBuckets)
	mReplayRecords = obs.Default.NewCounter("proxykit_ledger_replay_records_total",
		"WAL records replayed during recovery at Open.")
	mTornTails = obs.Default.NewCounter("proxykit_ledger_torn_tails_total",
		"Recoveries that dropped a torn (partially written) final WAL record.")
	mSnapshots = obs.Default.NewCounterVec("proxykit_ledger_snapshot_total",
		"Snapshot attempts by outcome.", "outcome")
	mSnapshotSeconds = obs.Default.NewHistogram("proxykit_ledger_snapshot_seconds",
		"Latency of full-state snapshot commits (marshal excluded, write+rename included).",
		obs.DefLatencyBuckets)
	mSnapshotBytes = obs.Default.NewGauge("proxykit_ledger_snapshot_bytes",
		"Size of the last committed snapshot state, in bytes.")

	mGroupCommitBatches = obs.Default.NewCounter("proxykit_ledger_group_commit_batches_total",
		"Commit cohorts flushed — one batch write + one fsync each — in FsyncAlways group-commit mode.")
	mGroupCommitRecords = obs.Default.NewHistogram("proxykit_ledger_group_commit_batch_records",
		"Records per flushed commit cohort: the fsync amortization factor.",
		batchBuckets)
	mGroupCommitSeconds = obs.Default.NewHistogram("proxykit_ledger_group_commit_seconds",
		"Leader-observed latency of a full cohort flush (batch write + fsync).",
		obs.DefLatencyBuckets)
)

// batchBuckets sizes cohort histograms: a cohort is bounded by the
// number of committers blocked during one flush, so small powers-ish of
// two cover the useful range.
var batchBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
