package kerberos

import (
	"fmt"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/replay"
	"proxykit/internal/restrict"
	"proxykit/internal/wire"
)

// APRequest is the client-to-application-server exchange: "a client
// sends the ticket to the end-server along with an authenticator which
// has been encrypted using the session key."
type APRequest struct {
	// Ticket names the client and seals the session key toward the
	// server.
	Ticket *Ticket
	// Authenticator is sealed under the session key and proves the
	// client possesses it.
	Authenticator []byte
}

// MakeAPRequest builds an AP request from credentials. checksum, if
// non-nil, binds the accompanying application request.
func (c *Client) MakeAPRequest(creds *Credentials, checksum []byte) (*APRequest, error) {
	nonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	auth := &Authenticator{
		Client:    c.ID,
		Timestamp: c.clk.Now(),
		Checksum:  checksum,
		Nonce:     nonce,
	}
	sealed, err := auth.seal(creds.SessionKey)
	if err != nil {
		return nil, err
	}
	return &APRequest{Ticket: creds.Ticket, Authenticator: sealed}, nil
}

// Server is the application end-server side of the protocol: it holds
// the service's long-term key, validates AP requests and proxy
// presentations, and maintains the replay cache.
type Server struct {
	// ID is the service principal.
	ID principal.ID

	key    *kcrypto.SymmetricKey
	clk    clock.Clock
	replay *replay.Cache
	// MaxSkew is the tolerated authenticator clock skew.
	MaxSkew time.Duration
}

// NewServer returns an application server for id holding its long-term
// key.
func NewServer(id principal.ID, key *kcrypto.SymmetricKey, clk clock.Clock) *Server {
	if clk == nil {
		clk = clock.System{}
	}
	return &Server{ID: id, key: key, clk: clk, replay: replay.New(clk), MaxSkew: MaxSkew}
}

// APContext is the outcome of a successful AP or proxy verification.
type APContext struct {
	// Client is the authenticated principal — for a proxy presentation,
	// the grantor whose rights apply.
	Client principal.ID
	// Presenter is the proving party: equal to Client for a direct AP
	// request; for proxies it is zero (bearer — identified only by key
	// possession).
	Presenter principal.ID
	// SessionKey is shared with the presenter for the rest of the
	// session (the proxy key for proxy presentations).
	SessionKey *kcrypto.SymmetricKey
	// Restrictions is the accumulated authorization-data.
	Restrictions restrict.Set
	// Expires is the ticket expiry.
	Expires time.Time
	// GrantorKeyID namespaces accept-once identifiers.
	GrantorKeyID string
}

// openTicket decrypts and validates a ticket against the server's key
// and clock.
func (s *Server) openTicket(t *Ticket) (*ticketBody, error) {
	if t == nil {
		return nil, fmt.Errorf("%w: missing ticket", ErrBadTicket)
	}
	if t.Server != s.ID {
		return nil, fmt.Errorf("%w: %s, this is %s", ErrWrongServer, t.Server, s.ID)
	}
	pt, err := s.key.Open(t.Sealed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTicket, err)
	}
	body, err := unmarshalTicketBody(pt)
	if err != nil {
		return nil, err
	}
	if !s.clk.Now().Before(body.Expires) {
		return nil, fmt.Errorf("%w: at %v", ErrExpired, body.Expires)
	}
	return body, nil
}

// checkFresh validates an authenticator's timestamp and replay
// uniqueness.
func (s *Server) checkFresh(a *Authenticator, scope string) error {
	now := s.clk.Now()
	if a.Timestamp.Before(now.Add(-s.MaxSkew)) || a.Timestamp.After(now.Add(s.MaxSkew)) {
		return fmt.Errorf("%w: authenticator at %v, now %v", ErrSkew, a.Timestamp, now)
	}
	key := fmt.Sprintf("%s:%s:%x", scope, a.Client, a.Nonce)
	if err := s.replay.Seen(key, a.Timestamp.Add(2*s.MaxSkew)); err != nil {
		return fmt.Errorf("%w: %v", ErrReplay, err)
	}
	return nil
}

// VerifyAPRequest validates a direct client AP request. checksum, if
// non-nil, must match the authenticator's bound checksum.
func (s *Server) VerifyAPRequest(req *APRequest, checksum []byte) (*APContext, error) {
	body, err := s.openTicket(req.Ticket)
	if err != nil {
		return nil, err
	}
	sk, err := kcrypto.SymmetricKeyFromBytes(body.SessionKey)
	if err != nil {
		return nil, err
	}
	a, err := openAuthenticator(req.Authenticator, sk)
	if err != nil {
		return nil, err
	}
	if a.Client != body.Client {
		return nil, fmt.Errorf("%w: %s != %s", ErrBadAuthenticator, a.Client, body.Client)
	}
	if err := s.checkFresh(a, "ap"); err != nil {
		return nil, err
	}
	if checksum != nil && string(a.Checksum) != string(checksum) {
		return nil, fmt.Errorf("%w: request checksum mismatch", ErrBadAuthenticator)
	}
	return &APContext{
		Client:       body.Client,
		Presenter:    body.Client,
		SessionKey:   sk,
		Restrictions: body.AuthzData.Merge(a.AuthzData),
		Expires:      body.Expires,
		GrantorKeyID: sk.KeyID(),
	}, nil
}

// MutualReply produces the mutual-authentication reply: the
// authenticator timestamp sealed under the session key.
func (s *Server) MutualReply(ctx *APContext, ts time.Time) ([]byte, error) {
	e := wire.NewEncoder(16)
	e.Time(ts)
	return ctx.SessionKey.Seal(e.Bytes())
}

// VerifyMutualReply lets the client confirm the server knew the session
// key.
func VerifyMutualReply(reply []byte, sessionKey *kcrypto.SymmetricKey, want time.Time) error {
	pt, err := sessionKey.Open(reply)
	if err != nil {
		return fmt.Errorf("kerberos: mutual reply: %w", err)
	}
	d := wire.NewDecoder(pt)
	ts := d.Time()
	if err := d.Finish(); err != nil {
		return err
	}
	if !ts.Equal(want) {
		return fmt.Errorf("kerberos: mutual reply timestamp mismatch")
	}
	return nil
}

// Proxy is a restricted proxy carried on Kerberos credentials (§6.2):
// the ticket, a chain of grant authenticators (each establishing the
// next proxy key and adding restrictions), and the final proxy key.
type Proxy struct {
	// Ticket is the underlying credential; it names the grantor.
	Ticket *Ticket
	// GrantChain holds sealed grant authenticators: [0] under the ticket
	// session key, [i] under the subkey of [i-1].
	GrantChain [][]byte
	// Key is the final proxy key, transferred confidentially to the
	// grantee.
	Key *kcrypto.SymmetricKey
	// Grantor is the ticket's client (informational; the ticket is
	// authoritative).
	Grantor principal.ID
	// Expires is the ticket expiry (informational).
	Expires time.Time
}

// MakeProxy creates a proxy from credentials: it generates a proxy key
// and a grant authenticator carrying it in the subkey field together
// with the added restrictions (§6.2).
func MakeProxy(creds *Credentials, added restrict.Set, clk clock.Clock) (*Proxy, error) {
	if clk == nil {
		clk = clock.System{}
	}
	proxyKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	nonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	grant := &Authenticator{
		Client:    creds.Client,
		Timestamp: clk.Now(),
		Subkey:    proxyKey.Bytes(),
		AuthzData: added,
		Nonce:     nonce,
	}
	sealed, err := grant.seal(creds.SessionKey)
	if err != nil {
		return nil, err
	}
	return &Proxy{
		Ticket:     creds.Ticket,
		GrantChain: [][]byte{sealed},
		Key:        proxyKey,
		Grantor:    creds.Client,
		Expires:    creds.Expires,
	}, nil
}

// Cascade adds a link: a new grant authenticator sealed under the
// current proxy key, carrying added restrictions and a fresh proxy key
// (Fig. 4 realized on Kerberos credentials).
func (p *Proxy) Cascade(added restrict.Set, clk clock.Clock) (*Proxy, error) {
	if clk == nil {
		clk = clock.System{}
	}
	newKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	nonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	grant := &Authenticator{
		Client:    p.Grantor,
		Timestamp: clk.Now(),
		Subkey:    newKey.Bytes(),
		AuthzData: added,
		Nonce:     nonce,
	}
	sealed, err := grant.seal(p.Key)
	if err != nil {
		return nil, err
	}
	chain := make([][]byte, len(p.GrantChain)+1)
	copy(chain, p.GrantChain)
	chain[len(p.GrantChain)] = sealed
	return &Proxy{
		Ticket:     p.Ticket,
		GrantChain: chain,
		Key:        newKey,
		Grantor:    p.Grantor,
		Expires:    p.Expires,
	}, nil
}

// ProxyPresentation is what a grantee sends to the end-server: ticket,
// grant chain, and a fresh proof authenticator sealed under the final
// proxy key.
type ProxyPresentation struct {
	Ticket     *Ticket
	GrantChain [][]byte
	// Proof is a fresh authenticator under the final proxy key.
	Proof []byte
}

// Present builds a presentation, proving possession of the proxy key.
// checksum binds the accompanying application request. presenter names
// the party proving possession (informational in the bearer case).
func (p *Proxy) Present(presenter principal.ID, checksum []byte, clk clock.Clock) (*ProxyPresentation, error) {
	if clk == nil {
		clk = clock.System{}
	}
	nonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	proof := &Authenticator{
		Client:    presenter,
		Timestamp: clk.Now(),
		Checksum:  checksum,
		Nonce:     nonce,
	}
	sealed, err := proof.seal(p.Key)
	if err != nil {
		return nil, err
	}
	return &ProxyPresentation{Ticket: p.Ticket, GrantChain: p.GrantChain, Proof: sealed}, nil
}

// VerifyProxy validates a proxy presentation: the ticket under the
// server key, each grant under the chained proxy keys, and the fresh
// proof under the final key. The returned context carries the grantor's
// identity and the accumulated restrictions.
func (s *Server) VerifyProxy(pp *ProxyPresentation, checksum []byte) (*APContext, error) {
	body, err := s.openTicket(pp.Ticket)
	if err != nil {
		return nil, err
	}
	sk, err := kcrypto.SymmetricKeyFromBytes(body.SessionKey)
	if err != nil {
		return nil, err
	}
	if len(pp.GrantChain) == 0 {
		return nil, fmt.Errorf("%w: empty grant chain", ErrBadAuthenticator)
	}
	authz := body.AuthzData
	key := sk
	for i, sealedGrant := range pp.GrantChain {
		g, err := openAuthenticator(sealedGrant, key)
		if err != nil {
			return nil, fmt.Errorf("grant %d: %w", i, err)
		}
		// Grant authenticators carry the proxy's issue time; they must
		// fall within the ticket's validity, but are not freshness
		// checked — the proxy may be presented long after it was
		// granted.
		if g.Timestamp.Before(body.IssuedAt.Add(-s.MaxSkew)) || g.Timestamp.After(body.Expires) {
			return nil, fmt.Errorf("grant %d: %w: granted at %v", i, ErrSkew, g.Timestamp)
		}
		if len(g.Subkey) == 0 {
			return nil, fmt.Errorf("grant %d: %w: grant lacks subkey", i, ErrBadAuthenticator)
		}
		authz = authz.Merge(g.AuthzData)
		if key, err = kcrypto.SymmetricKeyFromBytes(g.Subkey); err != nil {
			return nil, fmt.Errorf("grant %d subkey: %w", i, err)
		}
	}
	proof, err := openAuthenticator(pp.Proof, key)
	if err != nil {
		return nil, fmt.Errorf("proof: %w", err)
	}
	if err := s.checkFresh(proof, "proxy"); err != nil {
		return nil, err
	}
	if checksum != nil && string(proof.Checksum) != string(checksum) {
		return nil, fmt.Errorf("%w: request checksum mismatch", ErrBadAuthenticator)
	}
	return &APContext{
		Client:       body.Client,
		Presenter:    proof.Client,
		SessionKey:   key,
		Restrictions: authz,
		Expires:      body.Expires,
		GrantorKeyID: sk.KeyID(),
	}, nil
}

// AcceptOnceRegistry exposes the server's replay cache for accept-once
// restriction evaluation.
func (s *Server) AcceptOnceRegistry() restrict.AcceptOnceRegistry { return s.replay }

// RequestTicketWithProxy performs a TGS exchange using a proxy for the
// ticket-granting service (§6.3): the grantee, holding a TGT proxy,
// obtains tickets "with identical restrictions for additional
// end-servers as needed". The issued credentials still name the grantor.
func RequestTicketWithProxy(tgs TGS, p *Proxy, presenter principal.ID, server principal.ID, lifetime time.Duration, clk clock.Clock) (*Credentials, error) {
	if clk == nil {
		clk = clock.System{}
	}
	nonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	anonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	proof := &Authenticator{
		Client:    presenter,
		Timestamp: clk.Now(),
		Nonce:     anonce,
	}
	sealedProof, err := proof.seal(p.Key)
	if err != nil {
		return nil, err
	}
	reply, err := tgs.TicketGrantingService(&TGSRequest{
		Ticket:        p.Ticket,
		GrantChain:    p.GrantChain,
		Authenticator: sealedProof,
		Server:        server,
		Lifetime:      lifetime,
		Nonce:         nonce,
	})
	if err != nil {
		return nil, err
	}
	pt, err := p.Key.Open(reply.EncPart)
	if err != nil {
		return nil, fmt.Errorf("kerberos: open proxy TGS reply: %w", err)
	}
	enc, err := unmarshalEncReplyPart(pt)
	if err != nil {
		return nil, err
	}
	if string(enc.Nonce) != string(nonce) {
		return nil, ErrBadNonce
	}
	sk, err := kcrypto.SymmetricKeyFromBytes(enc.SessionKey)
	if err != nil {
		return nil, err
	}
	return &Credentials{
		Client:     p.Grantor,
		Ticket:     reply.Ticket,
		SessionKey: sk,
		AuthzData:  enc.AuthzData,
		Expires:    enc.Expires,
	}, nil
}
