// Package kerberos is a miniature Kerberos V5-style authentication
// substrate: an authentication server and ticket-granting server (the
// KDC), tickets carrying authorization-data, and authenticators with
// subkeys — exactly the features §6.2 of the paper relies on to carry
// restricted proxies in conventional cryptography.
//
// "The Version 5 ticket and authenticator each have a new field called
// authorization-data. ... Each subfield places additional restrictions
// on the use of credentials, never removing restrictions or granting
// additional privileges. ... To add restrictions to an existing ticket,
// a client generates an authenticator specifying a proxy key in the
// subkey field and specifying additional restrictions in the
// authorization-data field. The ticket and authenticator are treated as
// the new proxy and provided with the new proxy key to the grantee."
//
// The crypto is modernized (AES+HMAC sealing instead of DES) but the
// protocol structure — what is sealed under which key, what each message
// contains — follows the paper and the V5 specification it cites.
package kerberos

import (
	"errors"
	"fmt"
	"time"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
	"proxykit/internal/wire"
)

// Protocol errors.
var (
	ErrUnknownPrincipal = errors.New("kerberos: unknown principal")
	ErrBadTicket        = errors.New("kerberos: ticket did not decrypt or parse")
	ErrBadAuthenticator = errors.New("kerberos: authenticator did not decrypt or parse")
	ErrExpired          = errors.New("kerberos: ticket expired")
	ErrSkew             = errors.New("kerberos: clock skew exceeded")
	ErrReplay           = errors.New("kerberos: authenticator replayed")
	ErrPreauthRequired  = errors.New("kerberos: pre-authentication required")
	ErrPreauthFailed    = errors.New("kerberos: pre-authentication failed")
	ErrBadNonce         = errors.New("kerberos: reply nonce mismatch")
	ErrWrongServer      = errors.New("kerberos: ticket issued for another server")
)

// MaxSkew is the default tolerated clock skew, matching Kerberos
// practice.
const MaxSkew = 5 * time.Minute

// Ticket is a credential naming an authenticated client, sealed under
// the secret key shared by the end-server and the KDC. Only the server
// name travels in the clear.
type Ticket struct {
	// Server is the service the ticket is for.
	Server principal.ID
	// Sealed is the ticket body, sealed under the server's secret key.
	Sealed []byte
}

// ticketBody is the confidential interior of a Ticket.
type ticketBody struct {
	Client     principal.ID
	SessionKey []byte
	// AuthzData carries the restrictions placed on these credentials
	// (the ticket's authorization-data field).
	AuthzData restrict.Set
	IssuedAt  time.Time
	Expires   time.Time
	Nonce     []byte
}

func (tb *ticketBody) marshal() []byte {
	e := wire.NewEncoder(256)
	e.String("krb-ticket-v1")
	tb.Client.Encode(e)
	e.Bytes32(tb.SessionKey)
	tb.AuthzData.Encode(e)
	e.Time(tb.IssuedAt)
	e.Time(tb.Expires)
	e.Bytes32(tb.Nonce)
	return e.Bytes()
}

func unmarshalTicketBody(b []byte) (*ticketBody, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != "krb-ticket-v1" {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTicket)
	}
	tb := &ticketBody{}
	tb.Client = principal.DecodeID(d)
	tb.SessionKey = d.Bytes32()
	az, err := restrict.Decode(d)
	if err != nil {
		return nil, fmt.Errorf("%w: authz-data: %v", ErrBadTicket, err)
	}
	tb.AuthzData = az
	tb.IssuedAt = d.Time()
	tb.Expires = d.Time()
	tb.Nonce = d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTicket, err)
	}
	return tb, nil
}

// Marshal encodes the ticket for the wire.
func (t *Ticket) Marshal() []byte {
	e := wire.NewEncoder(64 + len(t.Sealed))
	t.Server.Encode(e)
	e.Bytes32(t.Sealed)
	return e.Bytes()
}

// UnmarshalTicket parses a wire-encoded ticket.
func UnmarshalTicket(b []byte) (*Ticket, error) {
	d := wire.NewDecoder(b)
	t := &Ticket{}
	t.Server = principal.DecodeID(d)
	t.Sealed = d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTicket, err)
	}
	return t, nil
}

// Credentials couple a ticket with the session key the client uses with
// it. "Credentials consist of two parts: a ticket, and a session key."
type Credentials struct {
	// Client is the authenticated principal.
	Client principal.ID
	// Ticket is presented to the end-server.
	Ticket *Ticket
	// SessionKey is shared with the end-server via the ticket; it never
	// crosses the network in the clear.
	SessionKey *kcrypto.SymmetricKey
	// AuthzData mirrors the restrictions sealed into the ticket so the
	// client knows what it holds.
	AuthzData restrict.Set
	// Expires is the ticket's expiry.
	Expires time.Time
}

// Authenticator proves possession of a session key (or subkey) at a
// point in time, and optionally establishes a subkey and additional
// authorization-data restrictions — the proxy mechanism of §6.2.
type Authenticator struct {
	// Client is the principal generating the authenticator.
	Client principal.ID
	// Timestamp is the generation instant; servers reject stale or
	// replayed authenticators.
	Timestamp time.Time
	// Subkey optionally establishes a new key — the proxy key when the
	// authenticator creates a proxy.
	Subkey []byte
	// AuthzData carries additional restrictions, never removals.
	AuthzData restrict.Set
	// Checksum binds the application request the authenticator
	// accompanies.
	Checksum []byte
	// Nonce makes the authenticator unique for replay detection.
	Nonce []byte
}

func (a *Authenticator) marshal() []byte {
	e := wire.NewEncoder(256)
	e.String("krb-auth-v1")
	a.Client.Encode(e)
	e.Time(a.Timestamp)
	e.Bytes32(a.Subkey)
	a.AuthzData.Encode(e)
	e.Bytes32(a.Checksum)
	e.Bytes32(a.Nonce)
	return e.Bytes()
}

func unmarshalAuthenticator(b []byte) (*Authenticator, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != "krb-auth-v1" {
		return nil, fmt.Errorf("%w: bad magic", ErrBadAuthenticator)
	}
	a := &Authenticator{}
	a.Client = principal.DecodeID(d)
	a.Timestamp = d.Time()
	a.Subkey = d.Bytes32()
	az, err := restrict.Decode(d)
	if err != nil {
		return nil, fmt.Errorf("%w: authz-data: %v", ErrBadAuthenticator, err)
	}
	a.AuthzData = az
	a.Checksum = d.Bytes32()
	a.Nonce = d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadAuthenticator, err)
	}
	return a, nil
}

// seal encrypts the authenticator under key.
func (a *Authenticator) seal(key *kcrypto.SymmetricKey) ([]byte, error) {
	return key.Seal(a.marshal())
}

// openAuthenticator decrypts and parses an authenticator sealed under
// key.
func openAuthenticator(sealed []byte, key *kcrypto.SymmetricKey) (*Authenticator, error) {
	pt, err := key.Open(sealed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadAuthenticator, err)
	}
	return unmarshalAuthenticator(pt)
}

// KeyFromPassword derives a principal's long-term secret key from a
// password (string-to-key).
func KeyFromPassword(id principal.ID, password string) (*kcrypto.SymmetricKey, error) {
	material := kcrypto.Digest([]byte("krb-s2k:" + id.String() + ":" + password))
	return kcrypto.SymmetricKeyFromBytes(material)
}
