package kerberos

import (
	"fmt"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
	"proxykit/internal/wire"
)

// AS is the authentication-server interface, implemented by *KDC
// directly and by transport clients.
type AS interface {
	AuthService(*ASRequest) (*ASReply, error)
}

// TGS is the ticket-granting-server interface.
type TGS interface {
	TicketGrantingService(*TGSRequest) (*ASReply, error)
}

// Client performs the client side of the Kerberos exchanges for one
// principal.
type Client struct {
	// ID is the client principal.
	ID principal.ID

	key *kcrypto.SymmetricKey
	clk clock.Clock
}

// NewClient returns a client for id holding its long-term secret key.
func NewClient(id principal.ID, key *kcrypto.SymmetricKey, clk clock.Clock) *Client {
	if clk == nil {
		clk = clock.System{}
	}
	return &Client{ID: id, key: key, clk: clk}
}

// NewClientWithPassword derives the long-term key from a password.
func NewClientWithPassword(id principal.ID, password string, clk clock.Clock) (*Client, error) {
	key, err := KeyFromPassword(id, password)
	if err != nil {
		return nil, err
	}
	return NewClient(id, key, clk), nil
}

// Login performs the AS exchange, returning initial credentials
// (normally a TGT). Restrictions, if any, are sealed into the ticket's
// authorization-data — the "initial authentication as proxy grant" of
// §6.3.
func (c *Client) Login(as AS, server principal.ID, lifetime time.Duration, restrictions restrict.Set) (*Credentials, error) {
	nonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(16)
	e.Time(c.clk.Now())
	preauth, err := c.key.Seal(e.Bytes())
	if err != nil {
		return nil, err
	}
	reply, err := as.AuthService(&ASRequest{
		Client:       c.ID,
		Server:       server,
		Lifetime:     lifetime,
		Nonce:        nonce,
		Preauth:      preauth,
		Restrictions: restrictions,
	})
	if err != nil {
		return nil, err
	}
	return c.decodeReply(reply, nonce, c.key)
}

// decodeReply opens an AS/TGS reply with replyKey and validates the
// nonce binding.
func (c *Client) decodeReply(reply *ASReply, nonce []byte, replyKey *kcrypto.SymmetricKey) (*Credentials, error) {
	pt, err := replyKey.Open(reply.EncPart)
	if err != nil {
		return nil, fmt.Errorf("kerberos: open reply: %w", err)
	}
	enc, err := unmarshalEncReplyPart(pt)
	if err != nil {
		return nil, fmt.Errorf("kerberos: parse reply: %w", err)
	}
	if string(enc.Nonce) != string(nonce) {
		return nil, ErrBadNonce
	}
	sk, err := kcrypto.SymmetricKeyFromBytes(enc.SessionKey)
	if err != nil {
		return nil, err
	}
	return &Credentials{
		Client:     c.ID,
		Ticket:     reply.Ticket,
		SessionKey: sk,
		AuthzData:  enc.AuthzData,
		Expires:    enc.Expires,
	}, nil
}

// RequestTicket performs a TGS exchange: it presents credentials
// (normally the TGT) and obtains a ticket for server. Restrictions in
// added are merged into the new ticket's authorization-data; the
// existing restrictions are always carried forward ("restrictions may be
// added, but not removed", §6.2).
func (c *Client) RequestTicket(tgs TGS, creds *Credentials, server principal.ID, lifetime time.Duration, added restrict.Set) (*Credentials, error) {
	nonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	anonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	auth := &Authenticator{
		Client:    c.ID,
		Timestamp: c.clk.Now(),
		AuthzData: added,
		Nonce:     anonce,
	}
	sealed, err := auth.seal(creds.SessionKey)
	if err != nil {
		return nil, err
	}
	reply, err := tgs.TicketGrantingService(&TGSRequest{
		Ticket:        creds.Ticket,
		Authenticator: sealed,
		Server:        server,
		Lifetime:      lifetime,
		Nonce:         nonce,
	})
	if err != nil {
		return nil, err
	}
	return c.decodeReply(reply, nonce, creds.SessionKey)
}
