package kerberos

import (
	"errors"
	"testing"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
)

const realm = "ISI.EDU"

var (
	uAlice = principal.New("alice", realm)
	uBob   = principal.New("bob", realm)
	svFile = principal.New("file/sv1", realm)
)

type world struct {
	t      *testing.T
	clk    *clock.Fake
	kdc    *KDC
	alice  *Client
	bob    *Client
	fileSv *Server
}

func newWorld(t *testing.T) *world {
	t.Helper()
	clk := clock.NewFake(time.Unix(5_000_000, 0))
	kdc, err := NewKDC(realm, clk)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{t: t, clk: clk, kdc: kdc}

	aliceKey, err := kdc.RegisterWithPassword(uAlice, "alice-password")
	if err != nil {
		t.Fatal(err)
	}
	w.alice = NewClient(uAlice, aliceKey, clk)

	bobKey, err := kdc.RegisterWithPassword(uBob, "bob-password")
	if err != nil {
		t.Fatal(err)
	}
	w.bob = NewClient(uBob, bobKey, clk)

	fileKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := kdc.Register(svFile, fileKey); err != nil {
		t.Fatal(err)
	}
	w.fileSv = NewServer(svFile, fileKey, clk)
	return w
}

func (w *world) login() *Credentials {
	w.t.Helper()
	tgt, err := w.alice.Login(w.kdc, w.kdc.TGS(), time.Hour, nil)
	if err != nil {
		w.t.Fatal(err)
	}
	return tgt
}

func (w *world) fileCreds(tgt *Credentials) *Credentials {
	w.t.Helper()
	creds, err := w.alice.RequestTicket(w.kdc, tgt, svFile, time.Hour, nil)
	if err != nil {
		w.t.Fatal(err)
	}
	return creds
}

func TestLoginAndAPExchange(t *testing.T) {
	w := newWorld(t)
	tgt := w.login()
	if tgt.Client != uAlice || tgt.Ticket.Server != w.kdc.TGS() {
		t.Fatalf("tgt = %+v", tgt)
	}
	creds := w.fileCreds(tgt)
	if creds.Ticket.Server != svFile {
		t.Fatalf("server = %v", creds.Ticket.Server)
	}

	req, err := w.alice.MakeAPRequest(creds, kcrypto.Digest([]byte("read /etc/motd")))
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := w.fileSv.VerifyAPRequest(req, kcrypto.Digest([]byte("read /etc/motd")))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Client != uAlice || ctx.Presenter != uAlice {
		t.Fatalf("ctx = %+v", ctx)
	}

	// Mutual authentication round trip.
	ts := w.clk.Now()
	reply, err := w.fileSv.MutualReply(ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMutualReply(reply, creds.SessionKey, ts); err != nil {
		t.Fatal(err)
	}
	if err := VerifyMutualReply(reply, creds.SessionKey, ts.Add(time.Second)); err == nil {
		t.Fatal("wrong timestamp accepted")
	}
}

func TestLoginWrongPassword(t *testing.T) {
	w := newWorld(t)
	badKey, _ := KeyFromPassword(uAlice, "wrong")
	impostor := NewClient(uAlice, badKey, w.clk)
	if _, err := impostor.Login(w.kdc, w.kdc.TGS(), time.Hour, nil); !errors.Is(err, ErrPreauthFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoginUnknownPrincipal(t *testing.T) {
	w := newWorld(t)
	key, _ := kcrypto.NewSymmetricKey()
	ghost := NewClient(principal.New("ghost", realm), key, w.clk)
	if _, err := ghost.Login(w.kdc, w.kdc.TGS(), time.Hour, nil); !errors.Is(err, ErrUnknownPrincipal) {
		t.Fatalf("err = %v", err)
	}
}

func TestPreauthRequired(t *testing.T) {
	w := newWorld(t)
	if _, err := w.kdc.AuthService(&ASRequest{Client: uAlice}); !errors.Is(err, ErrPreauthRequired) {
		t.Fatalf("err = %v", err)
	}
	w.kdc.RequirePreauth = false
	if _, err := w.kdc.AuthService(&ASRequest{Client: uAlice, Lifetime: time.Hour}); err != nil {
		t.Fatalf("preauth disabled: %v", err)
	}
}

func TestPreauthStaleTimestamp(t *testing.T) {
	w := newWorld(t)
	tgtReq := func() error {
		_, err := w.alice.Login(w.kdc, w.kdc.TGS(), time.Hour, nil)
		return err
	}
	if err := tgtReq(); err != nil {
		t.Fatal(err)
	}
	// A client whose clock is far behind fails preauth.
	w.clk.Advance(-time.Hour)
	slow := NewClient(uAlice, w.alice.key, clock.NewFake(w.clk.Now().Add(-2*time.Hour)))
	_ = slow
	w.clk.Advance(time.Hour)
	skewed := NewClient(uAlice, w.alice.key, clock.NewFake(w.clk.Now().Add(-time.Hour)))
	if _, err := skewed.Login(w.kdc, w.kdc.TGS(), time.Hour, nil); !errors.Is(err, ErrSkew) {
		t.Fatalf("err = %v", err)
	}
}

func TestTicketExpiry(t *testing.T) {
	w := newWorld(t)
	tgt := w.login()
	creds := w.fileCreds(tgt)
	w.clk.Advance(2 * time.Hour)
	req, err := w.alice.MakeAPRequest(creds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.fileSv.VerifyAPRequest(req, nil); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v", err)
	}
	// Expired TGT can't fetch new tickets either.
	if _, err := w.alice.RequestTicket(w.kdc, tgt, svFile, time.Hour, nil); !errors.Is(err, ErrExpired) {
		t.Fatalf("tgs err = %v", err)
	}
}

func TestDerivedTicketNeverOutlivesTGT(t *testing.T) {
	w := newWorld(t)
	tgt, err := w.alice.Login(w.kdc, w.kdc.TGS(), 30*time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	creds, err := w.alice.RequestTicket(w.kdc, tgt, svFile, 10*time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if creds.Expires.After(tgt.Expires) {
		t.Fatalf("derived ticket %v outlives TGT %v", creds.Expires, tgt.Expires)
	}
}

func TestAPReplayRejected(t *testing.T) {
	w := newWorld(t)
	creds := w.fileCreds(w.login())
	req, err := w.alice.MakeAPRequest(creds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.fileSv.VerifyAPRequest(req, nil); err != nil {
		t.Fatal(err)
	}
	// An eavesdropper replays the same request.
	if _, err := w.fileSv.VerifyAPRequest(req, nil); !errors.Is(err, ErrReplay) {
		t.Fatalf("err = %v", err)
	}
}

func TestAPSkewRejected(t *testing.T) {
	w := newWorld(t)
	creds := w.fileCreds(w.login())
	req, err := w.alice.MakeAPRequest(creds, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.clk.Advance(MaxSkew + time.Minute)
	if _, err := w.fileSv.VerifyAPRequest(req, nil); !errors.Is(err, ErrSkew) {
		t.Fatalf("err = %v", err)
	}
}

func TestAPChecksumBinding(t *testing.T) {
	w := newWorld(t)
	creds := w.fileCreds(w.login())
	req, err := w.alice.MakeAPRequest(creds, kcrypto.Digest([]byte("real request")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.fileSv.VerifyAPRequest(req, kcrypto.Digest([]byte("forged request"))); !errors.Is(err, ErrBadAuthenticator) {
		t.Fatalf("err = %v", err)
	}
}

func TestTicketForWrongServerRejected(t *testing.T) {
	w := newWorld(t)
	tgt := w.login()
	// Present the TGT (for krbtgt) to the file server.
	req, err := w.alice.MakeAPRequest(tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.fileSv.VerifyAPRequest(req, nil); !errors.Is(err, ErrWrongServer) {
		t.Fatalf("err = %v", err)
	}
}

func TestStolenTicketWithoutSessionKeyUseless(t *testing.T) {
	w := newWorld(t)
	creds := w.fileCreds(w.login())
	// Attacker has the ticket but fabricates an authenticator under a
	// guessed key.
	guess, _ := kcrypto.NewSymmetricKey()
	forged := &Authenticator{Client: uAlice, Timestamp: w.clk.Now(), Nonce: []byte("n")}
	sealed, _ := forged.seal(guess)
	req := &APRequest{Ticket: creds.Ticket, Authenticator: sealed}
	if _, err := w.fileSv.VerifyAPRequest(req, nil); !errors.Is(err, ErrBadAuthenticator) {
		t.Fatalf("err = %v", err)
	}
}

func TestRestrictionsCarriedAndAdditive(t *testing.T) {
	w := newWorld(t)
	// Login with an initial restriction (§6.3).
	initial := restrict.Set{restrict.Quota{Currency: "pages", Limit: 100}}
	tgt, err := w.alice.Login(w.kdc, w.kdc.TGS(), time.Hour, initial)
	if err != nil {
		t.Fatal(err)
	}
	if len(tgt.AuthzData) != 1 {
		t.Fatalf("tgt authz = %v", tgt.AuthzData)
	}
	// Request a service ticket adding a narrower quota.
	added := restrict.Set{restrict.Quota{Currency: "pages", Limit: 10}}
	creds, err := w.alice.RequestTicket(w.kdc, tgt, svFile, time.Hour, added)
	if err != nil {
		t.Fatal(err)
	}
	if q := creds.AuthzData.Quotas()["pages"]; q != 10 {
		t.Fatalf("effective quota = %d", q)
	}
	// The end-server sees the accumulated set inside the ticket.
	req, err := w.alice.MakeAPRequest(creds, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := w.fileSv.VerifyAPRequest(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q := ctx.Restrictions.Quotas()["pages"]; q != 10 {
		t.Fatalf("server-side quota = %d", q)
	}
}

func TestProxyGrantPresentVerify(t *testing.T) {
	w := newWorld(t)
	creds := w.fileCreds(w.login())

	// Alice creates a read-only proxy and hands it to Bob.
	added := restrict.Set{restrict.Authorized{Entries: []restrict.AuthorizedEntry{
		{Object: "/etc/motd", Ops: []string{"read"}},
	}}}
	px, err := MakeProxy(creds, added, w.clk)
	if err != nil {
		t.Fatal(err)
	}

	// Bob presents it (bearer: possession of the proxy key).
	pp, err := px.Present(uBob, nil, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := w.fileSv.VerifyProxy(pp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Client != uAlice {
		t.Fatalf("rights of %v, want alice", ctx.Client)
	}
	if ctx.Presenter != uBob {
		t.Fatalf("presenter = %v", ctx.Presenter)
	}
	rctx := &restrict.Context{Server: svFile, Object: "/etc/motd", Operation: "read"}
	if err := ctx.Restrictions.Check(rctx); err != nil {
		t.Fatal(err)
	}
	rctx.Operation = "write"
	if err := ctx.Restrictions.Check(rctx); err == nil {
		t.Fatal("write allowed through read-only proxy")
	}
}

func TestProxyCascadeAccumulates(t *testing.T) {
	w := newWorld(t)
	creds := w.fileCreds(w.login())
	px, err := MakeProxy(creds, restrict.Set{restrict.Quota{Currency: "pages", Limit: 100}}, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	px2, err := px.Cascade(restrict.Set{restrict.Quota{Currency: "pages", Limit: 5}}, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := px2.Present(uBob, nil, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := w.fileSv.VerifyProxy(pp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q := ctx.Restrictions.Quotas()["pages"]; q != 5 {
		t.Fatalf("quota = %d, want 5", q)
	}
	// The original (wider) proxy key can no longer present the extended
	// chain.
	forged := &ProxyPresentation{Ticket: px2.Ticket, GrantChain: px2.GrantChain}
	proof := &Authenticator{Client: uBob, Timestamp: w.clk.Now(), Nonce: []byte("x")}
	sealed, _ := proof.seal(px.Key) // old key
	forged.Proof = sealed
	if _, err := w.fileSv.VerifyProxy(forged, nil); err == nil {
		t.Fatal("old proxy key accepted for extended chain")
	}
}

func TestProxyProofReplayRejected(t *testing.T) {
	w := newWorld(t)
	creds := w.fileCreds(w.login())
	px, err := MakeProxy(creds, nil, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := px.Present(uBob, nil, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.fileSv.VerifyProxy(pp, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.fileSv.VerifyProxy(pp, nil); !errors.Is(err, ErrReplay) {
		t.Fatalf("err = %v", err)
	}
}

func TestProxyPresentationLongAfterGrant(t *testing.T) {
	w := newWorld(t)
	creds := w.fileCreds(w.login())
	px, err := MakeProxy(creds, nil, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	// 30 minutes pass (well beyond authenticator skew but within ticket
	// life) — the proxy must still be presentable.
	w.clk.Advance(30 * time.Minute)
	pp, err := px.Present(uBob, nil, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.fileSv.VerifyProxy(pp, nil); err != nil {
		t.Fatalf("aged proxy rejected: %v", err)
	}
}

func TestProxyEmptyChainRejected(t *testing.T) {
	w := newWorld(t)
	creds := w.fileCreds(w.login())
	pp := &ProxyPresentation{Ticket: creds.Ticket, Proof: []byte("junk")}
	if _, err := w.fileSv.VerifyProxy(pp, nil); !errors.Is(err, ErrBadAuthenticator) {
		t.Fatalf("err = %v", err)
	}
}

func TestTGSProxyFlow(t *testing.T) {
	w := newWorld(t)
	// Alice takes a TGT and grants Bob a proxy for the ticket-granting
	// service itself (§6.3), restricted to reading one file.
	tgt := w.login()
	rs := restrict.Set{restrict.Authorized{Entries: []restrict.AuthorizedEntry{
		{Object: "/etc/motd", Ops: []string{"read"}},
	}}}
	px, err := MakeProxy(tgt, rs, w.clk)
	if err != nil {
		t.Fatal(err)
	}

	// Bob uses the proxy to obtain a ticket for the file server.
	creds, err := RequestTicketWithProxy(w.kdc, px, uBob, svFile, time.Hour, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	if creds.Client != uAlice {
		t.Fatalf("ticket names %v, want alice (grantor's rights)", creds.Client)
	}
	// The restriction followed the proxy into the new ticket.
	if len(creds.AuthzData) == 0 {
		t.Fatal("restrictions not carried into derived ticket")
	}

	// Bob presents the derived credentials to the file server.
	bobView := NewClient(uAlice, nil, w.clk) // session key in creds is what matters
	req, err := bobView.MakeAPRequest(creds, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := w.fileSv.VerifyAPRequest(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	rctx := &restrict.Context{Server: svFile, Object: "/etc/motd", Operation: "read"}
	if err := ctx.Restrictions.Check(rctx); err != nil {
		t.Fatal(err)
	}
	rctx.Object = "/etc/passwd"
	if err := ctx.Restrictions.Check(rctx); err == nil {
		t.Fatal("derived ticket exceeded proxy restrictions")
	}
}

func TestTGSRejectsNonTGSTicket(t *testing.T) {
	w := newWorld(t)
	creds := w.fileCreds(w.login())
	_, err := w.alice.RequestTicket(w.kdc, creds, svFile, time.Hour, nil)
	if !errors.Is(err, ErrWrongServer) {
		t.Fatalf("err = %v", err)
	}
}

func TestTGSAuthenticatorClientMismatch(t *testing.T) {
	w := newWorld(t)
	tgt := w.login()
	// Bob steals Alice's TGT and session key is unknown to him; but even
	// with the session key (insider), the authenticator client must
	// match the ticket client.
	stolen := &Credentials{Client: uBob, Ticket: tgt.Ticket, SessionKey: tgt.SessionKey, Expires: tgt.Expires}
	if _, err := w.bob.RequestTicket(w.kdc, stolen, svFile, time.Hour, nil); !errors.Is(err, ErrBadAuthenticator) {
		t.Fatalf("err = %v", err)
	}
}

func TestTicketMarshalRoundTrip(t *testing.T) {
	w := newWorld(t)
	tgt := w.login()
	b := tgt.Ticket.Marshal()
	got, err := UnmarshalTicket(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Server != tgt.Ticket.Server || string(got.Sealed) != string(tgt.Ticket.Sealed) {
		t.Fatal("round trip mismatch")
	}
	if _, err := UnmarshalTicket([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRegisterOutsideRealmRejected(t *testing.T) {
	w := newWorld(t)
	key, _ := kcrypto.NewSymmetricKey()
	if err := w.kdc.Register(principal.New("x", "OTHER.REALM"), key); err == nil {
		t.Fatal("foreign principal registered")
	}
}

func TestTamperedTicketRejected(t *testing.T) {
	w := newWorld(t)
	creds := w.fileCreds(w.login())
	bad := &Ticket{Server: creds.Ticket.Server, Sealed: append([]byte{}, creds.Ticket.Sealed...)}
	bad.Sealed[len(bad.Sealed)/2] ^= 0x01
	req, err := w.alice.MakeAPRequest(&Credentials{
		Client: uAlice, Ticket: bad, SessionKey: creds.SessionKey, Expires: creds.Expires,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.fileSv.VerifyAPRequest(req, nil); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewClientWithPassword(t *testing.T) {
	w := newWorld(t)
	c, err := NewClientWithPassword(uAlice, "alice-password", w.clk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Login(w.kdc, w.kdc.TGS(), time.Hour, nil); err != nil {
		t.Fatalf("password-derived client cannot log in: %v", err)
	}
	if w.kdc.Realm() != realm {
		t.Fatalf("realm = %q", w.kdc.Realm())
	}
}

func TestServerAcceptOnceRegistry(t *testing.T) {
	w := newWorld(t)
	reg := w.fileSv.AcceptOnceRegistry()
	exp := w.clk.Now().Add(time.Hour)
	if err := reg.Accept("g", "check-1", exp); err != nil {
		t.Fatal(err)
	}
	if err := reg.Accept("g", "check-1", exp); err == nil {
		t.Fatal("duplicate accepted")
	}
}
