package kerberos

import (
	"fmt"
	"strings"
	"time"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
)

// Cross-realm authentication (an extension beyond the paper's single
// realm, supporting its §9 claim that "the resulting mechanisms
// scale"): two KDCs share an inter-realm key; the local TGS issues a
// cross-realm TGT for the remote realm's ticket-granting service, and
// the remote TGS accepts it and issues local service tickets.
// Authorization-data — i.e. restricted proxies — crosses realms intact
// and stays additive.

// crossRealmPrincipal names the remote realm's TGS as registered in the
// local realm: krbtgt/REMOTE@LOCAL.
func crossRealmPrincipal(remoteRealm, localRealm string) principal.ID {
	return principal.New("krbtgt/"+remoteRealm, localRealm)
}

// AcceptRealm configures the KDC to accept cross-realm TGTs issued by
// peerRealm under the shared inter-realm key.
func (k *KDC) AcceptRealm(peerRealm string, key *kcrypto.SymmetricKey) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.crossRealm == nil {
		k.crossRealm = make(map[string]*kcrypto.SymmetricKey)
	}
	k.crossRealm[peerRealm] = key
}

// TrustRealm configures the KDC to issue cross-realm TGTs for
// peerRealm under the shared inter-realm key: it registers the
// principal krbtgt/PEER@LOCAL.
func (k *KDC) TrustRealm(peerRealm string, key *kcrypto.SymmetricKey) error {
	return k.Register(crossRealmPrincipal(peerRealm, k.realm), key)
}

// Federate establishes bidirectional trust between two KDCs with fresh
// inter-realm keys (one per direction, as in Kerberos practice).
func Federate(a, b *KDC) error {
	abKey, err := kcrypto.NewSymmetricKey() // a's clients -> b's services
	if err != nil {
		return err
	}
	baKey, err := kcrypto.NewSymmetricKey() // b's clients -> a's services
	if err != nil {
		return err
	}
	if err := a.TrustRealm(b.realm, abKey); err != nil {
		return err
	}
	b.AcceptRealm(a.realm, abKey)
	if err := b.TrustRealm(a.realm, baKey); err != nil {
		return err
	}
	a.AcceptRealm(b.realm, baKey)
	return nil
}

// crossRealmTicketKey returns the key to open a presented TGS ticket:
// the local TGS key for ordinary tickets, or the inter-realm key for a
// cross-realm TGT issued by a trusted peer.
func (k *KDC) crossRealmTicketKey(server principal.ID) (*kcrypto.SymmetricKey, error) {
	if server == k.tgs {
		return k.keyFor(k.tgs)
	}
	if strings.HasPrefix(server.Name, "krbtgt/") && server.Name == "krbtgt/"+k.realm {
		k.mu.RLock()
		key, ok := k.crossRealm[server.Realm]
		k.mu.RUnlock()
		if ok {
			return key, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrWrongServer, server)
}

// CrossRealmTicket obtains a ticket for a service in another realm:
// first a cross-realm TGT from the local TGS, then the service ticket
// from the remote TGS. Restrictions added at either hop accumulate with
// those already in the TGT (§6.2 additivity, across realms).
func (c *Client) CrossRealmTicket(localTGS, remoteTGS TGS, tgt *Credentials, remoteRealm string, server principal.ID, lifetime time.Duration, added restrict.Set) (*Credentials, error) {
	cross, err := c.RequestTicket(localTGS, tgt, crossRealmPrincipal(remoteRealm, c.ID.Realm), lifetime, added)
	if err != nil {
		return nil, fmt.Errorf("kerberos: cross-realm TGT: %w", err)
	}
	creds, err := c.RequestTicket(remoteTGS, cross, server, lifetime, nil)
	if err != nil {
		return nil, fmt.Errorf("kerberos: remote service ticket: %w", err)
	}
	return creds, nil
}
