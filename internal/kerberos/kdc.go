package kerberos

import (
	"fmt"
	"sync"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/replay"
	"proxykit/internal/restrict"
	"proxykit/internal/wire"
)

// KDC is the key distribution center: the authentication server (AS) and
// ticket-granting server (TGS) for one realm.
type KDC struct {
	realm  string
	tgs    principal.ID
	clk    clock.Clock
	replay *replay.Cache
	// MaxLife caps ticket lifetimes.
	MaxLife time.Duration
	// RequirePreauth makes the AS demand an encrypted-timestamp
	// pre-authenticator (Kerberos V5 behavior).
	RequirePreauth bool

	mu   sync.RWMutex
	keys map[principal.ID]*kcrypto.SymmetricKey
	// crossRealm maps a trusted peer realm to the inter-realm key used
	// to open cross-realm TGTs it issued (see crossrealm.go).
	crossRealm map[string]*kcrypto.SymmetricKey
}

// NewKDC creates a KDC for realm. The TGS principal krbtgt/REALM@REALM
// is provisioned automatically.
func NewKDC(realm string, clk clock.Clock) (*KDC, error) {
	if clk == nil {
		clk = clock.System{}
	}
	k := &KDC{
		realm:          realm,
		tgs:            principal.New("krbtgt/"+realm, realm),
		clk:            clk,
		replay:         replay.New(clk),
		MaxLife:        10 * time.Hour,
		RequirePreauth: true,
		keys:           make(map[principal.ID]*kcrypto.SymmetricKey),
	}
	tgsKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	k.keys[k.tgs] = tgsKey
	return k, nil
}

// Realm returns the KDC's realm.
func (k *KDC) Realm() string { return k.realm }

// TGS returns the ticket-granting service's principal identity.
func (k *KDC) TGS() principal.ID { return k.tgs }

// Register provisions a principal with a secret key shared with the
// KDC. It returns an error if the principal is outside the realm.
func (k *KDC) Register(id principal.ID, key *kcrypto.SymmetricKey) error {
	if id.Realm != k.realm {
		return fmt.Errorf("kerberos: %s is not in realm %s", id, k.realm)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.keys[id] = key
	return nil
}

// RegisterWithPassword provisions a principal from a password and
// returns the derived key (which the principal also derives locally).
func (k *KDC) RegisterWithPassword(id principal.ID, password string) (*kcrypto.SymmetricKey, error) {
	key, err := KeyFromPassword(id, password)
	if err != nil {
		return nil, err
	}
	if err := k.Register(id, key); err != nil {
		return nil, err
	}
	return key, nil
}

func (k *KDC) keyFor(id principal.ID) (*kcrypto.SymmetricKey, error) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	key, ok := k.keys[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPrincipal, id)
	}
	return key, nil
}

// ASRequest asks the authentication server for initial credentials —
// normally a ticket-granting ticket.
type ASRequest struct {
	// Client is the requesting principal.
	Client principal.ID
	// Server is the service the ticket should name; usually the TGS.
	Server principal.ID
	// Lifetime requested; capped by the KDC's MaxLife.
	Lifetime time.Duration
	// Nonce is echoed in the sealed reply to bind it to this request.
	Nonce []byte
	// Preauth is an encrypted-timestamp pre-authenticator: the current
	// time sealed under the client's secret key.
	Preauth []byte
	// Restrictions to seal into the ticket's authorization-data at the
	// client's request: "the initial authentication of a user can itself
	// be thought of as the granting of a proxy and restrictions can be
	// placed on the credentials" (§6.3).
	Restrictions restrict.Set
}

// ASReply returns a ticket and the session key sealed under the client's
// secret key.
type ASReply struct {
	// Ticket for the requested server.
	Ticket *Ticket
	// EncPart is sealed under the client's secret key and contains the
	// session key, echoed nonce, and expiry.
	EncPart []byte
}

// encReplyPart is the confidential portion of AS and TGS replies.
type encReplyPart struct {
	SessionKey []byte
	Nonce      []byte
	Server     principal.ID
	Expires    time.Time
	AuthzData  restrict.Set
}

func (p *encReplyPart) marshal() []byte {
	e := wire.NewEncoder(128)
	e.Bytes32(p.SessionKey)
	e.Bytes32(p.Nonce)
	p.Server.Encode(e)
	e.Time(p.Expires)
	p.AuthzData.Encode(e)
	return e.Bytes()
}

func unmarshalEncReplyPart(b []byte) (*encReplyPart, error) {
	d := wire.NewDecoder(b)
	p := &encReplyPart{}
	p.SessionKey = d.Bytes32()
	p.Nonce = d.Bytes32()
	p.Server = principal.DecodeID(d)
	p.Expires = d.Time()
	az, err := restrict.Decode(d)
	if err != nil {
		return nil, err
	}
	p.AuthzData = az
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// AuthService handles an AS exchange: it authenticates the client via
// pre-authentication (if required) and issues a ticket for the requested
// server, sealing the session key toward the client.
func (k *KDC) AuthService(req *ASRequest) (*ASReply, error) {
	clientKey, err := k.keyFor(req.Client)
	if err != nil {
		return nil, err
	}
	now := k.clk.Now()
	if k.RequirePreauth {
		if req.Preauth == nil {
			return nil, ErrPreauthRequired
		}
		pt, err := clientKey.Open(req.Preauth)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPreauthFailed, err)
		}
		d := wire.NewDecoder(pt)
		ts := d.Time()
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPreauthFailed, err)
		}
		if ts.Before(now.Add(-MaxSkew)) || ts.After(now.Add(MaxSkew)) {
			return nil, fmt.Errorf("%w: preauth timestamp %v", ErrSkew, ts)
		}
	}
	server := req.Server
	if server.IsZero() {
		server = k.tgs
	}
	return k.issue(req.Client, server, req.Lifetime, req.Nonce, req.Restrictions, clientKey)
}

// issue builds a ticket for (client → server) and a reply sealed under
// replyKey.
func (k *KDC) issue(client, server principal.ID, lifetime time.Duration, nonce []byte, authz restrict.Set, replyKey *kcrypto.SymmetricKey) (*ASReply, error) {
	serverKey, err := k.keyFor(server)
	if err != nil {
		return nil, err
	}
	sessionKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	if lifetime <= 0 || lifetime > k.MaxLife {
		lifetime = k.MaxLife
	}
	now := k.clk.Now()
	tnonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	body := &ticketBody{
		Client:     client,
		SessionKey: sessionKey.Bytes(),
		AuthzData:  authz,
		IssuedAt:   now,
		Expires:    now.Add(lifetime),
		Nonce:      tnonce,
	}
	sealed, err := serverKey.Seal(body.marshal())
	if err != nil {
		return nil, err
	}
	enc := &encReplyPart{
		SessionKey: sessionKey.Bytes(),
		Nonce:      nonce,
		Server:     server,
		Expires:    body.Expires,
		AuthzData:  authz,
	}
	encSealed, err := replyKey.Seal(enc.marshal())
	if err != nil {
		return nil, err
	}
	return &ASReply{
		Ticket:  &Ticket{Server: server, Sealed: sealed},
		EncPart: encSealed,
	}, nil
}

// TGSRequest asks the ticket-granting server for a ticket to a new
// server, based on existing credentials (normally a TGT). Restrictions
// may be added but never removed (§6.2).
type TGSRequest struct {
	// Ticket is the TGT (or a proxy for the TGS, §6.3).
	Ticket *Ticket
	// GrantChain carries the proxy authenticators when the TGT is held
	// as a proxy: GrantChain[0] is sealed under the TGT session key,
	// GrantChain[i] under the subkey established by GrantChain[i-1].
	// Each carries added restrictions and establishes the next proxy
	// key. Empty for ordinary requests.
	GrantChain [][]byte
	// Authenticator is the fresh proof of possession: sealed under the
	// final proxy key from GrantChain, or under the TGT session key when
	// GrantChain is empty. Its authorization-data adds restrictions; its
	// subkey, if set, seals the reply.
	Authenticator []byte
	// Server is the target service.
	Server principal.ID
	// Lifetime requested.
	Lifetime time.Duration
	// Nonce is echoed in the sealed reply.
	Nonce []byte
}

// TicketGrantingService handles a TGS exchange: it opens the presented
// ticket with its own key, validates the grant chain and the fresh
// authenticator, and issues a ticket for the target carrying the
// accumulated restrictions. When the TGT is held as a proxy, the issued
// ticket still names the original client — the proxy conveys the
// grantor's rights ("Such a proxy allows the grantee to obtain proxies
// with identical restrictions for additional end-servers as needed",
// §6.3).
func (k *KDC) TicketGrantingService(req *TGSRequest) (*ASReply, error) {
	if req.Ticket == nil {
		return nil, fmt.Errorf("%w: missing ticket", ErrBadTicket)
	}
	tgsKey, err := k.crossRealmTicketKey(req.Ticket.Server)
	if err != nil {
		return nil, err
	}
	pt, err := tgsKey.Open(req.Ticket.Sealed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTicket, err)
	}
	body, err := unmarshalTicketBody(pt)
	if err != nil {
		return nil, err
	}
	now := k.clk.Now()
	if !now.Before(body.Expires) {
		return nil, fmt.Errorf("%w: at %v", ErrExpired, body.Expires)
	}
	sessionKey, err := kcrypto.SymmetricKeyFromBytes(body.SessionKey)
	if err != nil {
		return nil, err
	}

	// Walk the grant chain: restrictions accumulate and each link hands
	// the key to the next. Grant authenticators are not freshness
	// checked — they were made when the proxy was granted — but must
	// fall inside the ticket's validity.
	authz := body.AuthzData
	proofKey := sessionKey
	for i, sealedGrant := range req.GrantChain {
		a, err := openAuthenticator(sealedGrant, proofKey)
		if err != nil {
			return nil, fmt.Errorf("grant %d: %w", i, err)
		}
		if a.Timestamp.Before(body.IssuedAt.Add(-MaxSkew)) || a.Timestamp.After(body.Expires) {
			return nil, fmt.Errorf("grant %d: %w: granted at %v", i, ErrSkew, a.Timestamp)
		}
		if len(a.Subkey) == 0 {
			return nil, fmt.Errorf("grant %d: %w: proxy grant lacks subkey", i, ErrBadAuthenticator)
		}
		authz = authz.Merge(a.AuthzData)
		if proofKey, err = kcrypto.SymmetricKeyFromBytes(a.Subkey); err != nil {
			return nil, fmt.Errorf("grant %d subkey: %w", i, err)
		}
	}

	// The final authenticator is the fresh proof of possession.
	a, err := openAuthenticator(req.Authenticator, proofKey)
	if err != nil {
		return nil, err
	}
	if err := k.checkAuthenticator(a, now); err != nil {
		return nil, err
	}
	if len(req.GrantChain) == 0 && a.Client != body.Client {
		return nil, fmt.Errorf("%w: authenticator client %s != ticket client %s",
			ErrBadAuthenticator, a.Client, body.Client)
	}
	authz = authz.Merge(a.AuthzData)
	replyKey := proofKey
	if len(a.Subkey) > 0 {
		if replyKey, err = kcrypto.SymmetricKeyFromBytes(a.Subkey); err != nil {
			return nil, err
		}
	}

	lifetime := req.Lifetime
	if remaining := body.Expires.Sub(now); lifetime <= 0 || lifetime > remaining {
		lifetime = remaining // derived tickets never outlive the TGT
	}
	return k.issue(body.Client, req.Server, lifetime, req.Nonce, authz, replyKey)
}

func (k *KDC) checkAuthenticator(a *Authenticator, now time.Time) error {
	if a.Timestamp.Before(now.Add(-MaxSkew)) || a.Timestamp.After(now.Add(MaxSkew)) {
		return fmt.Errorf("%w: authenticator at %v", ErrSkew, a.Timestamp)
	}
	key := fmt.Sprintf("tgs-auth:%s:%x", a.Client, a.Nonce)
	if err := k.replay.Seen(key, a.Timestamp.Add(2*MaxSkew)); err != nil {
		return fmt.Errorf("%w: %v", ErrReplay, err)
	}
	return nil
}
