package kerberos

import (
	"errors"
	"testing"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
)

const (
	realmA = "ALPHA.ORG"
	realmB = "BETA.ORG"
)

type crossWorld struct {
	t        *testing.T
	clk      *clock.Fake
	kdcA     *KDC
	kdcB     *KDC
	alice    *Client
	remoteSv principal.ID
	remoteK  *kcrypto.SymmetricKey
}

func newCrossWorld(t *testing.T) *crossWorld {
	t.Helper()
	clk := clock.NewFake(time.Unix(40_000_000, 0))
	kdcA, err := NewKDC(realmA, clk)
	if err != nil {
		t.Fatal(err)
	}
	kdcB, err := NewKDC(realmB, clk)
	if err != nil {
		t.Fatal(err)
	}
	if err := Federate(kdcA, kdcB); err != nil {
		t.Fatal(err)
	}
	aliceID := principal.New("alice", realmA)
	aliceKey, err := kdcA.RegisterWithPassword(aliceID, "pw")
	if err != nil {
		t.Fatal(err)
	}
	remoteSv := principal.New("file/remote", realmB)
	remoteKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := kdcB.Register(remoteSv, remoteKey); err != nil {
		t.Fatal(err)
	}
	return &crossWorld{
		t:        t,
		clk:      clk,
		kdcA:     kdcA,
		kdcB:     kdcB,
		alice:    NewClient(aliceID, aliceKey, clk),
		remoteSv: remoteSv,
		remoteK:  remoteKey,
	}
}

func TestCrossRealmServiceTicket(t *testing.T) {
	w := newCrossWorld(t)
	tgt, err := w.alice.Login(w.kdcA, w.kdcA.TGS(), time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	creds, err := w.alice.CrossRealmTicket(w.kdcA, w.kdcB, tgt, realmB, w.remoteSv, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if creds.Ticket.Server != w.remoteSv {
		t.Fatalf("ticket for %v", creds.Ticket.Server)
	}
	if creds.Client != w.alice.ID {
		t.Fatalf("client = %v", creds.Client)
	}

	// The remote end-server accepts it.
	srv := NewServer(w.remoteSv, w.remoteK, w.clk)
	req, err := w.alice.MakeAPRequest(creds, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := srv.VerifyAPRequest(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Client != w.alice.ID {
		t.Fatalf("remote server saw client %v", ctx.Client)
	}
}

func TestCrossRealmRestrictionsAccumulate(t *testing.T) {
	// Restrictions placed at login and at the cross-realm hop both
	// arrive in the remote service ticket — additivity across realms.
	w := newCrossWorld(t)
	tgt, err := w.alice.Login(w.kdcA, w.kdcA.TGS(), time.Hour, restrict.Set{
		restrict.Quota{Currency: "mb", Limit: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	creds, err := w.alice.CrossRealmTicket(w.kdcA, w.kdcB, tgt, realmB, w.remoteSv, time.Hour, restrict.Set{
		restrict.Quota{Currency: "mb", Limit: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if q := creds.AuthzData.Quotas()["mb"]; q != 10 {
		t.Fatalf("effective cross-realm quota = %d", q)
	}
	srv := NewServer(w.remoteSv, w.remoteK, w.clk)
	req, _ := w.alice.MakeAPRequest(creds, nil)
	ctx, err := srv.VerifyAPRequest(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q := ctx.Restrictions.Quotas()["mb"]; q != 10 {
		t.Fatalf("server-side quota = %d", q)
	}
}

func TestCrossRealmRequiresFederation(t *testing.T) {
	// A third, unfederated realm rejects cross TGTs.
	w := newCrossWorld(t)
	kdcC, err := NewKDC("GAMMA.ORG", w.clk)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := w.alice.Login(w.kdcA, w.kdcA.TGS(), time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Realm A has no krbtgt/GAMMA.ORG principal: step 1 fails.
	if _, err := w.alice.CrossRealmTicket(w.kdcA, kdcC, tgt, "GAMMA.ORG", principal.New("x", "GAMMA.ORG"), time.Hour, nil); !errors.Is(err, ErrUnknownPrincipal) {
		t.Fatalf("err = %v", err)
	}

	// Even with a forged one-sided trust, GAMMA rejects the ticket: it
	// never accepted ALPHA.
	key, _ := kcrypto.NewSymmetricKey()
	if err := w.kdcA.TrustRealm("GAMMA.ORG", key); err != nil {
		t.Fatal(err)
	}
	if _, err := w.alice.CrossRealmTicket(w.kdcA, kdcC, tgt, "GAMMA.ORG", principal.New("x", "GAMMA.ORG"), time.Hour, nil); !errors.Is(err, ErrWrongServer) {
		t.Fatalf("one-sided trust err = %v", err)
	}
}

func TestCrossRealmWrongKeyRejected(t *testing.T) {
	// Federation with mismatched keys: the remote TGS cannot open the
	// cross TGT.
	clk := clock.NewFake(time.Unix(40_000_000, 0))
	kdcA, _ := NewKDC(realmA, clk)
	kdcB, _ := NewKDC(realmB, clk)
	k1, _ := kcrypto.NewSymmetricKey()
	k2, _ := kcrypto.NewSymmetricKey()
	if err := kdcA.TrustRealm(realmB, k1); err != nil {
		t.Fatal(err)
	}
	kdcB.AcceptRealm(realmA, k2) // wrong key

	aliceID := principal.New("alice", realmA)
	aliceKey, _ := kdcA.RegisterWithPassword(aliceID, "pw")
	alice := NewClient(aliceID, aliceKey, clk)
	tgt, err := alice.Login(kdcA, kdcA.TGS(), time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	sv := principal.New("svc", realmB)
	svKey, _ := kcrypto.NewSymmetricKey()
	if err := kdcB.Register(sv, svKey); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.CrossRealmTicket(kdcA, kdcB, tgt, realmB, sv, time.Hour, nil); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrossRealmDerivedTicketBoundedByTGT(t *testing.T) {
	w := newCrossWorld(t)
	tgt, err := w.alice.Login(w.kdcA, w.kdcA.TGS(), 30*time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	creds, err := w.alice.CrossRealmTicket(w.kdcA, w.kdcB, tgt, realmB, w.remoteSv, 10*time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if creds.Expires.After(tgt.Expires) {
		t.Fatalf("cross-realm ticket %v outlives TGT %v", creds.Expires, tgt.Expires)
	}
}
