// Package clock provides an injectable time source so that protocol
// components (ticket lifetimes, proxy expiry, replay windows) can be
// tested deterministically.
package clock

import (
	"sync"
	"time"
)

// Clock is the time source used by every component in proxykit that
// needs the current time. Production code uses System; tests use a Fake.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// System is a Clock backed by the real system time.
type System struct{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// Fake is a manually advanced Clock for tests. The zero value starts at
// the zero time; NewFake starts it at a supplied instant.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a Fake clock frozen at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward by d. Negative durations move it back,
// which tests use to simulate clock skew between hosts.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// Set pins the clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = t
}

var _ Clock = System{}
var _ Clock = (*Fake)(nil)
