package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemAdvances(t *testing.T) {
	var c System
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatal("system clock went backwards")
	}
}

func TestFakeAdvanceAndSet(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("now = %v", f.Now())
	}
	f.Advance(time.Minute)
	if !f.Now().Equal(start.Add(time.Minute)) {
		t.Fatalf("after advance: %v", f.Now())
	}
	f.Advance(-2 * time.Minute) // skew simulation
	if !f.Now().Equal(start.Add(-time.Minute)) {
		t.Fatalf("after negative advance: %v", f.Now())
	}
	pinned := time.Unix(9999, 0)
	f.Set(pinned)
	if !f.Now().Equal(pinned) {
		t.Fatalf("after set: %v", f.Now())
	}
}

func TestFakeConcurrentAccess(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				f.Advance(time.Millisecond)
				_ = f.Now()
			}
		}()
	}
	wg.Wait()
	want := time.Unix(0, 0).Add(1600 * time.Millisecond)
	if !f.Now().Equal(want) {
		t.Fatalf("now = %v, want %v", f.Now(), want)
	}
}
