package restrict

import (
	"fmt"

	"proxykit/internal/principal"
	"proxykit/internal/wire"
)

// maxNesting bounds Limit recursion during decoding so hostile
// certificates cannot cause unbounded recursion.
const maxNesting = 8

// Encode appends the set to e in canonical form: a count followed by
// (type, length-prefixed body) for each restriction, in set order.
func (s Set) Encode(e *wire.Encoder) {
	e.Uint32(uint32(len(s)))
	for _, r := range s {
		e.Uint8(uint8(r.Type()))
		body := wire.NewEncoder(64)
		r.encodeBody(body)
		e.Bytes32(body.Bytes())
	}
}

// Marshal returns the canonical encoding of the set.
func (s Set) Marshal() []byte {
	e := wire.NewEncoder(128)
	s.Encode(e)
	return e.Bytes()
}

// Decode reads a Set encoded by Encode.
func Decode(d *wire.Decoder) (Set, error) {
	return decodeSet(d, 0)
}

// Unmarshal decodes a Set from its complete canonical encoding.
func Unmarshal(b []byte) (Set, error) {
	d := wire.NewDecoder(b)
	s, err := Decode(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

func decodeSet(d *wire.Decoder, depth int) (Set, error) {
	if depth > maxNesting {
		return nil, fmt.Errorf("%w: limit-restriction nesting exceeds %d", ErrMalformed, maxNesting)
	}
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > wire.MaxSliceLen {
		return nil, fmt.Errorf("%w: restriction count %d", ErrMalformed, n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make(Set, 0, min(int(n), 64))
	for i := uint32(0); i < n; i++ {
		typ := Type(d.Uint8())
		body := d.Bytes32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		r, err := decodeOne(typ, body, depth)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func decodeOne(typ Type, body []byte, depth int) (Restriction, error) {
	d := wire.NewDecoder(body)
	var r Restriction
	switch typ {
	case TypeGrantee:
		g := Grantee{Needed: int(d.Uint32())}
		g.Principals = decodeIDs(d)
		r = g
	case TypeForUseByGroup:
		f := ForUseByGroup{Needed: int(d.Uint32())}
		f.Groups = decodeGlobals(d)
		r = f
	case TypeIssuedFor:
		r = IssuedFor{Servers: decodeIDs(d)}
	case TypeQuota:
		r = Quota{Currency: d.String(), Limit: d.Int64()}
	case TypeAuthorized:
		n := d.Uint32()
		if d.Err() == nil && n > wire.MaxSliceLen {
			return nil, fmt.Errorf("%w: authorized entry count", ErrMalformed)
		}
		entries := make([]AuthorizedEntry, 0, min(int(n), 64))
		for i := uint32(0); i < n && d.Err() == nil; i++ {
			entries = append(entries, AuthorizedEntry{
				Object: d.String(),
				Ops:    d.StringSlice(),
			})
		}
		r = Authorized{Entries: entries}
	case TypeGroupMembership:
		r = GroupMembership{Groups: decodeGlobals(d)}
	case TypeAcceptOnce:
		r = AcceptOnce{ID: d.String()}
	case TypeDepositTo:
		r = DepositTo{Account: principal.DecodeGlobal(d)}
	case TypeLimit:
		l := Limit{Servers: decodeIDs(d)}
		inner, err := decodeSet(d, depth+1)
		if err != nil {
			return nil, err
		}
		l.Restrictions = inner
		r = l
	default:
		// Unknown restriction types fail closed: a verifier that cannot
		// interpret a restriction cannot guarantee it is enforced, and
		// restrictions are only ever narrowing.
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(typ))
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrMalformed, typ, err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrMalformed, typ, err)
	}
	return r, nil
}

func decodeIDs(d *wire.Decoder) []principal.ID {
	n := d.Uint32()
	if d.Err() != nil || n == 0 || n > wire.MaxSliceLen {
		return nil
	}
	out := make([]principal.ID, 0, min(int(n), 64))
	for i := uint32(0); i < n; i++ {
		out = append(out, principal.DecodeID(d))
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

func decodeGlobals(d *wire.Decoder) []principal.Global {
	n := d.Uint32()
	if d.Err() != nil || n == 0 || n > wire.MaxSliceLen {
		return nil
	}
	out := make([]principal.Global, 0, min(int(n), 64))
	for i := uint32(0); i < n; i++ {
		out = append(out, principal.DecodeGlobal(d))
		if d.Err() != nil {
			return nil
		}
	}
	return out
}
