package restrict

import (
	"time"

	"proxykit/internal/principal"
)

// AcceptOnceRegistry records once-only identifiers (§7.7). End-servers
// and accounting servers supply an implementation (internal/replay); the
// registry must reject an identifier already accepted from the same
// grantor within the expiry window.
type AcceptOnceRegistry interface {
	// Accept records (grantor, id) until expires, returning an error if
	// the pair was already accepted and has not yet expired.
	Accept(grantorKeyID, id string, expires time.Time) error
}

// Context describes one presented request; the evaluation engine checks
// a proxy chain's accumulated restrictions against it. The end-server
// constructs the Context after authenticating the presenter.
type Context struct {
	// Server is the identity of the end-server performing evaluation.
	Server principal.ID

	// Object and Operation name the requested action in
	// server-interpreted form (§7.5).
	Object    string
	Operation string

	// ClientIdentities are the principals the presenter has
	// authenticated as (its own identity for delegate proxies, possibly
	// several for compound requirements).
	ClientIdentities []principal.ID

	// VerifiedGroups are group memberships the server has verified via
	// accompanying group proxies (§7.2).
	VerifiedGroups map[principal.Global]bool

	// AssertedGroups are the memberships the presenter is asserting with
	// this proxy — checked against GroupMembership restrictions (§7.6).
	AssertedGroups []principal.Global

	// Amounts is the resource quantity requested per currency, checked
	// against Quota restrictions (§7.4).
	Amounts map[string]int64

	// DepositAccount is the account credited by this transaction, if
	// any, checked against DepositTo endorsement restrictions (§4).
	DepositAccount principal.Global

	// Now is the evaluation instant.
	Now time.Time

	// Expires is the expiry of the outermost certificate in the chain;
	// accept-once records are retained until then (§7.7).
	Expires time.Time

	// GrantorKeyID identifies the original grantor's signing key, the
	// namespace for accept-once identifiers.
	GrantorKeyID string

	// AcceptOnce is the server's once-only registry; nil fails any
	// accept-once restriction closed.
	AcceptOnce AcceptOnceRegistry
}
