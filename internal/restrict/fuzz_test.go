package restrict

import (
	"testing"

	"proxykit/internal/principal"
)

// FuzzUnmarshal feeds arbitrary bytes to the restriction-set decoder:
// no panics, and accepted sets must round-trip stably.
func FuzzUnmarshal(f *testing.F) {
	f.Add(sampleSet().Marshal())
	f.Add(Set(nil).Marshal())
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Unmarshal(s.Marshal())
		if err != nil {
			t.Fatalf("accepted set failed round trip: %v", err)
		}
		if again.String() != s.String() {
			t.Fatalf("round trip changed set: %s != %s", again, s)
		}
		// Evaluation over a fixed context must not panic either.
		ctx := &Context{
			Server:           principal.New("sv", "R"),
			Object:           "/o",
			Operation:        "read",
			ClientIdentities: []principal.ID{principal.New("u", "R")},
			Amounts:          map[string]int64{"c": 1},
		}
		_ = s.Check(ctx)
	})
}
