// Package restrict implements the typed restriction model of §7 of the
// paper. A restriction set is "a collection of typed subfields, each type
// corresponding to a different restriction"; restrictions are strictly
// additive — adding one can only narrow what a proxy permits, never widen
// it (§6.2: "restrictions must be additive").
//
// The package provides:
//
//   - the eight restriction types named by the paper (grantee,
//     for-use-by-group, issued-for, quota, authorized, group-membership,
//     accept-once, limit-restriction);
//   - deterministic encoding so restriction sets can be embedded in
//     signed certificates;
//   - an evaluation engine: an end-server builds a Context describing the
//     presented request and evaluates the accumulated restriction set of
//     a proxy chain against it;
//   - the propagation rule of §7.9 for servers that issue proxies based
//     on proxies.
package restrict

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"proxykit/internal/principal"
	"proxykit/internal/wire"
)

// Type identifies a restriction kind on the wire.
type Type uint8

// Restriction types defined by §7 of the paper.
const (
	TypeGrantee Type = iota + 1
	TypeForUseByGroup
	TypeIssuedFor
	TypeQuota
	TypeAuthorized
	TypeGroupMembership
	TypeAcceptOnce
	TypeLimit
	// TypeDepositTo is the endorsement restriction of §4 (Fig. 5): the
	// "dep ckno to $1" subfield directing a check's proceeds to a
	// specific account. Endorsers scope it to the bank that must honor
	// it by nesting it in a limit-restriction.
	TypeDepositTo
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeGrantee:
		return "grantee"
	case TypeForUseByGroup:
		return "for-use-by-group"
	case TypeIssuedFor:
		return "issued-for"
	case TypeQuota:
		return "quota"
	case TypeAuthorized:
		return "authorized"
	case TypeGroupMembership:
		return "group-membership"
	case TypeAcceptOnce:
		return "accept-once"
	case TypeLimit:
		return "limit-restriction"
	case TypeDepositTo:
		return "deposit-to"
	default:
		return fmt.Sprintf("restriction(%d)", uint8(t))
	}
}

// Errors from decoding and evaluation.
var (
	ErrUnknownType = errors.New("restrict: unknown restriction type")
	ErrMalformed   = errors.New("restrict: malformed restriction")
)

// DeniedError reports which restriction rejected a request and why. The
// paper requires end-servers to be able to explain denials for audit.
type DeniedError struct {
	// Restriction is the kind that failed.
	Restriction Type
	// Reason is a human-readable explanation.
	Reason string
}

// Error implements error.
func (e *DeniedError) Error() string {
	return fmt.Sprintf("restrict: denied by %s: %s", e.Restriction, e.Reason)
}

func denied(t Type, format string, args ...any) error {
	return &DeniedError{Restriction: t, Reason: fmt.Sprintf(format, args...)}
}

// Restriction is one typed condition on the use of a proxy.
type Restriction interface {
	// Type reports the restriction kind.
	Type() Type
	// Check evaluates the restriction against a presented request,
	// returning nil if the request satisfies it and a *DeniedError
	// otherwise.
	Check(ctx *Context) error
	// encodeBody appends the type-specific body (without the type tag).
	encodeBody(e *wire.Encoder)
	// String renders a human-readable form for audit logs.
	String() string
}

// Grantee restricts the proxy to named principals (§7.1). "This
// restriction specifies a list of principals authorized to use a proxy
// and the number of principals from the list needed to exercise the
// proxy." A proxy whose accumulated restrictions include no Grantee is a
// bearer proxy.
type Grantee struct {
	// Principals may exercise the proxy.
	Principals []principal.ID
	// Needed is how many listed principals must authenticate
	// concurrently; 0 is treated as 1.
	Needed int
}

// Type implements Restriction.
func (Grantee) Type() Type { return TypeGrantee }

// Check implements Restriction: at least Needed of the listed principals
// must appear among the authenticated client identities.
func (g Grantee) Check(ctx *Context) error {
	needed := g.Needed
	if needed <= 0 {
		needed = 1
	}
	have := 0
	for _, p := range g.Principals {
		for _, c := range ctx.ClientIdentities {
			if p == c {
				have++
				break
			}
		}
	}
	if have < needed {
		return denied(TypeGrantee, "%d of %d required grantees authenticated (need %d)",
			have, len(g.Principals), needed)
	}
	return nil
}

func (g Grantee) encodeBody(e *wire.Encoder) {
	e.Uint32(uint32(g.Needed))
	e.Uint32(uint32(len(g.Principals)))
	for _, p := range g.Principals {
		p.Encode(e)
	}
}

// String implements Restriction.
func (g Grantee) String() string {
	return fmt.Sprintf("grantee(%s need %d)", joinIDs(g.Principals), max(g.Needed, 1))
}

// ForUseByGroup restricts the proxy to members of named groups (§7.2).
// The bearer must present group-membership proxies from the listed group
// servers; requiring multiple disjoint groups implements separation of
// privilege.
type ForUseByGroup struct {
	// Groups whose membership may exercise the proxy.
	Groups []principal.Global
	// Needed is how many listed groups must be asserted; 0 means 1.
	Needed int
}

// Type implements Restriction.
func (ForUseByGroup) Type() Type { return TypeForUseByGroup }

// Check implements Restriction.
func (f ForUseByGroup) Check(ctx *Context) error {
	needed := f.Needed
	if needed <= 0 {
		needed = 1
	}
	have := 0
	for _, g := range f.Groups {
		if ctx.VerifiedGroups[g] {
			have++
		}
	}
	if have < needed {
		return denied(TypeForUseByGroup, "%d of %d required group memberships asserted (need %d)",
			have, len(f.Groups), needed)
	}
	return nil
}

func (f ForUseByGroup) encodeBody(e *wire.Encoder) {
	e.Uint32(uint32(f.Needed))
	e.Uint32(uint32(len(f.Groups)))
	for _, g := range f.Groups {
		g.Encode(e)
	}
}

// String implements Restriction.
func (f ForUseByGroup) String() string {
	parts := make([]string, len(f.Groups))
	for i, g := range f.Groups {
		parts[i] = g.String()
	}
	return fmt.Sprintf("for-use-by-group(%s need %d)", strings.Join(parts, ","), max(f.Needed, 1))
}

// IssuedFor restricts which end-servers may accept the proxy (§7.3).
// "This restriction is important for public-key proxies which are
// otherwise verifiable by and exercisable on all servers."
type IssuedFor struct {
	// Servers authorized to accept the proxy.
	Servers []principal.ID
}

// Type implements Restriction.
func (IssuedFor) Type() Type { return TypeIssuedFor }

// Check implements Restriction.
func (f IssuedFor) Check(ctx *Context) error {
	for _, s := range f.Servers {
		if s == ctx.Server {
			return nil
		}
	}
	return denied(TypeIssuedFor, "server %s not among %s", ctx.Server, joinIDs(f.Servers))
}

func (f IssuedFor) encodeBody(e *wire.Encoder) {
	e.Uint32(uint32(len(f.Servers)))
	for _, s := range f.Servers {
		s.Encode(e)
	}
}

// String implements Restriction.
func (f IssuedFor) String() string {
	return fmt.Sprintf("issued-for(%s)", joinIDs(f.Servers))
}

// Quota limits the quantity of a resource that may be consumed (§7.4).
// "It will most often be found in a proxy issued by an accounting
// server."
type Quota struct {
	// Currency names the resource (monetary or resource-specific).
	Currency string
	// Limit is the maximum quantity.
	Limit int64
}

// Type implements Restriction.
func (Quota) Type() Type { return TypeQuota }

// Check implements Restriction: the requested amount in the quota's
// currency must not exceed the limit. Multiple quota restrictions for
// the same currency accumulate to the minimum automatically because each
// is checked independently.
func (q Quota) Check(ctx *Context) error {
	req := ctx.Amounts[q.Currency]
	if req > q.Limit {
		return denied(TypeQuota, "requested %d %s exceeds limit %d", req, q.Currency, q.Limit)
	}
	return nil
}

func (q Quota) encodeBody(e *wire.Encoder) {
	e.String(q.Currency)
	e.Int64(q.Limit)
}

// String implements Restriction.
func (q Quota) String() string { return fmt.Sprintf("quota(%d %s)", q.Limit, q.Currency) }

// AuthorizedEntry names one object and the operations permitted on it.
// An empty Ops list permits every operation on the object. "There are no
// constraints on the form of the object names or the list of operations
// other than that the grantor and the end-server must agree" (§7.5).
type AuthorizedEntry struct {
	// Object is the end-server-interpreted object name.
	Object string
	// Ops lists permitted operations; empty means all.
	Ops []string
}

// Authorized enumerates the complete list of objects accessible with the
// proxy (§7.5). "This restriction usually appears in proxies used as
// capabilities. It also appears in proxies returned by an authorization
// server."
type Authorized struct {
	// Entries are the permitted (object, operations) pairs.
	Entries []AuthorizedEntry
}

// Type implements Restriction.
func (Authorized) Type() Type { return TypeAuthorized }

// Check implements Restriction.
func (a Authorized) Check(ctx *Context) error {
	for _, ent := range a.Entries {
		if ent.Object != ctx.Object {
			continue
		}
		if len(ent.Ops) == 0 {
			return nil
		}
		for _, op := range ent.Ops {
			if op == ctx.Operation {
				return nil
			}
		}
	}
	return denied(TypeAuthorized, "operation %q on object %q not in authorized list",
		ctx.Operation, ctx.Object)
}

func (a Authorized) encodeBody(e *wire.Encoder) {
	e.Uint32(uint32(len(a.Entries)))
	for _, ent := range a.Entries {
		e.String(ent.Object)
		e.StringSlice(ent.Ops)
	}
}

// String implements Restriction.
func (a Authorized) String() string {
	parts := make([]string, len(a.Entries))
	for i, ent := range a.Entries {
		if len(ent.Ops) == 0 {
			parts[i] = ent.Object + ":*"
		} else {
			parts[i] = ent.Object + ":" + strings.Join(ent.Ops, "|")
		}
	}
	return fmt.Sprintf("authorized(%s)", strings.Join(parts, ","))
}

// GroupMembership limits the groups a group-server proxy may assert
// (§7.6). "Without this restriction, the grantee would be considered a
// member of all groups maintained by the group server granting the
// proxy."
type GroupMembership struct {
	// Groups the grantee may claim membership in.
	Groups []principal.Global
}

// Type implements Restriction.
func (GroupMembership) Type() Type { return TypeGroupMembership }

// Check implements Restriction: every membership the request asserts on
// behalf of this proxy must be listed.
func (g GroupMembership) Check(ctx *Context) error {
	for _, asserted := range ctx.AssertedGroups {
		ok := false
		for _, allowed := range g.Groups {
			if asserted == allowed {
				ok = true
				break
			}
		}
		if !ok {
			return denied(TypeGroupMembership, "membership in %s not granted", asserted)
		}
	}
	return nil
}

func (g GroupMembership) encodeBody(e *wire.Encoder) {
	e.Uint32(uint32(len(g.Groups)))
	for _, gr := range g.Groups {
		gr.Encode(e)
	}
}

// String implements Restriction.
func (g GroupMembership) String() string {
	parts := make([]string, len(g.Groups))
	for i, gr := range g.Groups {
		parts[i] = gr.String()
	}
	return fmt.Sprintf("group-membership(%s)", strings.Join(parts, ","))
}

// AcceptOnce tells an end-server to accept the proxy at most once within
// its validity period (§7.7). "A real life example of such an identifier
// is a check number."
type AcceptOnce struct {
	// ID is the once-only identifier, unique per grantor.
	ID string
}

// Type implements Restriction.
func (AcceptOnce) Type() Type { return TypeAcceptOnce }

// Check implements Restriction by consulting the context's replay
// recorder. Servers that evaluate accept-once proxies must supply one;
// absence fails closed.
func (a AcceptOnce) Check(ctx *Context) error {
	if ctx.AcceptOnce == nil {
		return denied(TypeAcceptOnce, "server provides no accept-once registry")
	}
	if err := ctx.AcceptOnce.Accept(ctx.GrantorKeyID, a.ID, ctx.Expires); err != nil {
		return denied(TypeAcceptOnce, "identifier %q: %v", a.ID, err)
	}
	return nil
}

func (a AcceptOnce) encodeBody(e *wire.Encoder) { e.String(a.ID) }

// String implements Restriction.
func (a AcceptOnce) String() string { return fmt.Sprintf("accept-once(%s)", a.ID) }

// Limit scopes embedded restrictions to particular end-servers (§7.8).
// "The restrictions embedded within this restriction will be enforced by
// the named servers and ignored by others."
type Limit struct {
	// Servers to which the embedded restrictions apply.
	Servers []principal.ID
	// Restrictions enforced only on those servers.
	Restrictions Set
}

// Type implements Restriction.
func (Limit) Type() Type { return TypeLimit }

// Check implements Restriction: if the evaluating server is listed, every
// embedded restriction is checked; otherwise the restriction is ignored.
func (l Limit) Check(ctx *Context) error {
	applies := false
	for _, s := range l.Servers {
		if s == ctx.Server {
			applies = true
			break
		}
	}
	if !applies {
		return nil
	}
	return l.Restrictions.Check(ctx)
}

func (l Limit) encodeBody(e *wire.Encoder) {
	e.Uint32(uint32(len(l.Servers)))
	for _, s := range l.Servers {
		s.Encode(e)
	}
	l.Restrictions.Encode(e)
}

// String implements Restriction.
func (l Limit) String() string {
	return fmt.Sprintf("limit(%s: %s)", joinIDs(l.Servers), l.Restrictions)
}

// DepositTo is the endorsement restriction of §4: it directs a check's
// proceeds to a named account. An endorsement "[dep ckno to $1]" is
// encoded as Limit{Servers: [$1], Restrictions: {DepositTo{account}}} so
// each bank in the clearing chain honors only its own instruction.
type DepositTo struct {
	// Account the proceeds must be credited to.
	Account principal.Global
}

// Type implements Restriction.
func (DepositTo) Type() Type { return TypeDepositTo }

// Check implements Restriction: the transaction's credited account must
// match. Requests that credit no account (DepositAccount zero) fail —
// the restriction demands a deposit.
func (dt DepositTo) Check(ctx *Context) error {
	if ctx.DepositAccount != dt.Account {
		return denied(TypeDepositTo, "proceeds directed to %s, not %s", ctx.DepositAccount, dt.Account)
	}
	return nil
}

func (dt DepositTo) encodeBody(e *wire.Encoder) { dt.Account.Encode(e) }

// String implements Restriction.
func (dt DepositTo) String() string { return fmt.Sprintf("deposit-to(%s)", dt.Account) }

func joinIDs(ids []principal.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return strings.Join(parts, ",")
}

// Set is an ordered collection of restrictions. Order is preserved for
// deterministic encoding; semantics are conjunction — every restriction
// must pass.
type Set []Restriction

// Check evaluates every restriction against ctx, failing on the first
// denial. An empty set permits everything (the grantor's full rights, as
// for an unrestricted proxy).
func (s Set) Check(ctx *Context) error {
	for _, r := range s {
		if err := r.Check(ctx); err != nil {
			return err
		}
	}
	return nil
}

// HasGrantee reports whether any restriction in the set (including those
// nested in Limit restrictions that apply to server) names a grantee.
// A proxy chain with no grantee restriction is a bearer proxy (§7.1).
func (s Set) HasGrantee(server principal.ID) bool {
	for _, r := range s {
		switch r := r.(type) {
		case Grantee:
			return true
		case Limit:
			for _, srv := range r.Servers {
				if srv == server && r.Restrictions.HasGrantee(server) {
					return true
				}
			}
		}
	}
	return false
}

// Grantees returns the union of all principals named in Grantee
// restrictions in the set (ignoring Limit nesting); the delegate set an
// end-server checks cascaded delegate proxies against.
func (s Set) Grantees() []principal.ID {
	var out []principal.ID
	for _, r := range s {
		if g, ok := r.(Grantee); ok {
			out = append(out, g.Principals...)
		}
	}
	return out
}

// Merge returns the additive combination of s and more: simple
// concatenation, because restriction semantics are conjunctive. The
// receiver is not modified.
func (s Set) Merge(more Set) Set {
	out := make(Set, 0, len(s)+len(more))
	out = append(out, s...)
	out = append(out, more...)
	return out
}

// Propagate implements §7.9: a server that issues a proxy based on a
// presented proxy copies the presented restrictions into the issued
// proxy. A Limit restriction may be dropped when the issued proxy (and
// anything derived from it) cannot be used at any of the servers it
// names; issuedFor is the set of servers the new proxy is confined to
// (via its own IssuedFor restriction). If issuedFor is empty the new
// proxy's audience is unknown and every Limit is retained.
func (s Set) Propagate(issuedFor []principal.ID) Set {
	if len(issuedFor) == 0 {
		out := make(Set, len(s))
		copy(out, s)
		return out
	}
	audience := principal.NewSet(issuedFor...)
	out := make(Set, 0, len(s))
	for _, r := range s {
		if l, ok := r.(Limit); ok {
			relevant := false
			for _, srv := range l.Servers {
				if audience.Contains(srv) {
					relevant = true
					break
				}
			}
			if !relevant {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// Quotas returns the effective (minimum) limit per currency across the
// set, for servers that need to inspect quotas directly (e.g. accounting
// servers computing holds).
func (s Set) Quotas() map[string]int64 {
	out := make(map[string]int64)
	for _, r := range s {
		q, ok := r.(Quota)
		if !ok {
			continue
		}
		if cur, seen := out[q.Currency]; !seen || q.Limit < cur {
			out[q.Currency] = q.Limit
		}
	}
	return out
}

// String renders the set for audit logs.
func (s Set) String() string {
	if len(s) == 0 {
		return "(unrestricted)"
	}
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = r.String()
	}
	return strings.Join(parts, " & ")
}

// SortedTypes returns the distinct restriction types present, ordered,
// for diagnostics.
func (s Set) SortedTypes() []Type {
	seen := make(map[Type]bool)
	var out []Type
	for _, r := range s {
		if !seen[r.Type()] {
			seen[r.Type()] = true
			out = append(out, r.Type())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
