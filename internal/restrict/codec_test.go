package restrict

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"proxykit/internal/principal"
	"proxykit/internal/wire"
)

func sampleSet() Set {
	return Set{
		Grantee{Principals: []principal.ID{alice, bob}, Needed: 2},
		ForUseByGroup{Groups: []principal.Global{principal.NewGlobal(grpSv, "staff")}, Needed: 1},
		IssuedFor{Servers: []principal.ID{fileSv, mailSv}},
		Quota{Currency: "pages", Limit: 42},
		Authorized{Entries: []AuthorizedEntry{
			{Object: "/a", Ops: []string{"read", "write"}},
			{Object: "/b"},
		}},
		GroupMembership{Groups: []principal.Global{principal.NewGlobal(grpSv, "staff")}},
		AcceptOnce{ID: "check-7"},
		Limit{
			Servers:      []principal.ID{mailSv},
			Restrictions: Set{Quota{Currency: "msgs", Limit: 3}},
		},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	s := sampleSet()
	b := s.Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != s.String() {
		t.Fatalf("round trip:\n got %s\nwant %s", got, s)
	}
	if len(got) != len(s) {
		t.Fatalf("len = %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i].Type() != s[i].Type() {
			t.Fatalf("restriction %d type %s, want %s", i, got[i].Type(), s[i].Type())
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	if !bytes.Equal(sampleSet().Marshal(), sampleSet().Marshal()) {
		t.Fatal("encoding not deterministic")
	}
}

func TestEmptySetRoundTrip(t *testing.T) {
	b := Set(nil).Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("got %v", got)
	}
}

func TestUnknownTypeFailsClosed(t *testing.T) {
	e := wire.NewEncoder(0)
	e.Uint32(1)
	e.Uint8(99) // unknown restriction type
	e.Bytes32([]byte("whatever"))
	if _, err := Unmarshal(e.Bytes()); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v", err)
	}
}

func TestMalformedBodyRejected(t *testing.T) {
	e := wire.NewEncoder(0)
	e.Uint32(1)
	e.Uint8(uint8(TypeQuota))
	e.Bytes32([]byte{1, 2}) // too short for currency+limit
	if _, err := Unmarshal(e.Bytes()); err == nil {
		t.Fatal("malformed quota accepted")
	}
}

func TestTrailingBytesInBodyRejected(t *testing.T) {
	body := wire.NewEncoder(0)
	body.String("pages")
	body.Int64(5)
	body.Uint8(0xee) // trailing garbage inside the restriction body
	e := wire.NewEncoder(0)
	e.Uint32(1)
	e.Uint8(uint8(TypeQuota))
	e.Bytes32(body.Bytes())
	if _, err := Unmarshal(e.Bytes()); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
}

func TestTrailingBytesAfterSetRejected(t *testing.T) {
	b := append(sampleSet().Marshal(), 0xff)
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestNestingDepthLimit(t *testing.T) {
	// Build limit(limit(limit(... quota))) beyond maxNesting.
	inner := Set{Quota{Currency: "x", Limit: 1}}
	for i := 0; i < maxNesting+2; i++ {
		inner = Set{Limit{Servers: []principal.ID{fileSv}, Restrictions: inner}}
	}
	if _, err := Unmarshal(inner.Marshal()); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
	// At a legal depth it decodes fine.
	legal := Set{Quota{Currency: "x", Limit: 1}}
	for i := 0; i < maxNesting-1; i++ {
		legal = Set{Limit{Servers: []principal.ID{fileSv}, Restrictions: legal}}
	}
	if _, err := Unmarshal(legal.Marshal()); err != nil {
		t.Fatalf("legal depth rejected: %v", err)
	}
}

func TestAbsurdCountRejected(t *testing.T) {
	e := wire.NewEncoder(0)
	e.Uint32(wire.MaxSliceLen + 1)
	if _, err := Unmarshal(e.Bytes()); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
}

// Property: decoding arbitrary bytes never panics and never produces a
// set that re-encodes to something that fails to decode.
func TestPropertyDecodeGarbageNoPanic(t *testing.T) {
	f := func(garbage []byte) bool {
		s, err := Unmarshal(garbage)
		if err != nil {
			return true
		}
		// Whatever decoded must round-trip.
		again, err := Unmarshal(s.Marshal())
		return err == nil && again.String() == s.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quota sets built from arbitrary limits round-trip and report
// minimum quotas correctly.
func TestPropertyQuotaMin(t *testing.T) {
	f := func(limits []int64) bool {
		if len(limits) == 0 {
			return true
		}
		s := make(Set, 0, len(limits))
		minimum := limits[0]
		for _, l := range limits {
			if l < 0 {
				l = -l
			}
			s = append(s, Quota{Currency: "c", Limit: l})
			if l < minimum || minimum < 0 {
				minimum = l
			}
		}
		got, err := Unmarshal(s.Marshal())
		if err != nil {
			return false
		}
		return got.Quotas()["c"] == s.Quotas()["c"]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
