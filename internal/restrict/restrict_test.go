package restrict

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"proxykit/internal/principal"
)

var (
	alice  = principal.New("alice", "ISI.EDU")
	bob    = principal.New("bob", "ISI.EDU")
	carol  = principal.New("carol", "MIT.EDU")
	fileSv = principal.New("file/sv1", "ISI.EDU")
	mailSv = principal.New("mail/sv1", "ISI.EDU")
	grpSv  = principal.New("groups", "ISI.EDU")
)

func baseCtx() *Context {
	return &Context{
		Server:           fileSv,
		Object:           "/etc/motd",
		Operation:        "read",
		ClientIdentities: []principal.ID{alice},
		VerifiedGroups:   map[principal.Global]bool{},
		Amounts:          map[string]int64{},
		Now:              time.Unix(1000, 0),
		Expires:          time.Unix(2000, 0),
		GrantorKeyID:     "grantor-key",
	}
}

func wantDenied(t *testing.T, err error, typ Type) {
	t.Helper()
	var de *DeniedError
	if !errors.As(err, &de) {
		t.Fatalf("got %v, want DeniedError", err)
	}
	if de.Restriction != typ {
		t.Fatalf("denied by %s, want %s", de.Restriction, typ)
	}
}

func TestGranteeCheck(t *testing.T) {
	tests := []struct {
		name    string
		r       Grantee
		clients []principal.ID
		ok      bool
	}{
		{"single named grantee present", Grantee{Principals: []principal.ID{alice}}, []principal.ID{alice}, true},
		{"grantee absent", Grantee{Principals: []principal.ID{alice}}, []principal.ID{bob}, false},
		{"no identities", Grantee{Principals: []principal.ID{alice}}, nil, false},
		{"one of several", Grantee{Principals: []principal.ID{alice, bob}}, []principal.ID{bob}, true},
		{"need two, have one", Grantee{Principals: []principal.ID{alice, bob}, Needed: 2}, []principal.ID{alice}, false},
		{"need two, have two", Grantee{Principals: []principal.ID{alice, bob}, Needed: 2}, []principal.ID{bob, alice}, true},
		{"needed zero treated as one", Grantee{Principals: []principal.ID{alice}, Needed: 0}, []principal.ID{alice}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ctx := baseCtx()
			ctx.ClientIdentities = tt.clients
			err := tt.r.Check(ctx)
			if tt.ok && err != nil {
				t.Fatalf("unexpected denial: %v", err)
			}
			if !tt.ok {
				wantDenied(t, err, TypeGrantee)
			}
		})
	}
}

func TestForUseByGroupCheck(t *testing.T) {
	staff := principal.NewGlobal(grpSv, "staff")
	admin := principal.NewGlobal(grpSv, "admin")
	tests := []struct {
		name     string
		r        ForUseByGroup
		verified []principal.Global
		ok       bool
	}{
		{"member", ForUseByGroup{Groups: []principal.Global{staff}}, []principal.Global{staff}, true},
		{"not member", ForUseByGroup{Groups: []principal.Global{staff}}, nil, false},
		{"separation of privilege needs both", ForUseByGroup{Groups: []principal.Global{staff, admin}, Needed: 2}, []principal.Global{staff}, false},
		{"separation of privilege satisfied", ForUseByGroup{Groups: []principal.Global{staff, admin}, Needed: 2}, []principal.Global{staff, admin}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ctx := baseCtx()
			for _, g := range tt.verified {
				ctx.VerifiedGroups[g] = true
			}
			err := tt.r.Check(ctx)
			if tt.ok != (err == nil) {
				t.Fatalf("ok=%v err=%v", tt.ok, err)
			}
			if err != nil {
				wantDenied(t, err, TypeForUseByGroup)
			}
		})
	}
}

func TestIssuedForCheck(t *testing.T) {
	r := IssuedFor{Servers: []principal.ID{fileSv}}
	if err := r.Check(baseCtx()); err != nil {
		t.Fatalf("listed server denied: %v", err)
	}
	ctx := baseCtx()
	ctx.Server = mailSv
	wantDenied(t, r.Check(ctx), TypeIssuedFor)
}

func TestQuotaCheck(t *testing.T) {
	r := Quota{Currency: "pages", Limit: 10}
	tests := []struct {
		req int64
		ok  bool
	}{{0, true}, {10, true}, {11, false}, {1 << 40, false}}
	for _, tt := range tests {
		ctx := baseCtx()
		ctx.Amounts["pages"] = tt.req
		err := r.Check(ctx)
		if tt.ok != (err == nil) {
			t.Fatalf("req=%d ok=%v err=%v", tt.req, tt.ok, err)
		}
	}
	// A request in a different currency is not limited by this quota.
	ctx := baseCtx()
	ctx.Amounts["dollars"] = 1000
	if err := r.Check(ctx); err != nil {
		t.Fatalf("other currency denied: %v", err)
	}
}

func TestAuthorizedCheck(t *testing.T) {
	r := Authorized{Entries: []AuthorizedEntry{
		{Object: "/etc/motd", Ops: []string{"read"}},
		{Object: "/tmp/scratch"}, // all ops
	}}
	tests := []struct {
		obj, op string
		ok      bool
	}{
		{"/etc/motd", "read", true},
		{"/etc/motd", "write", false},
		{"/tmp/scratch", "write", true},
		{"/tmp/scratch", "delete", true},
		{"/etc/passwd", "read", false},
	}
	for _, tt := range tests {
		ctx := baseCtx()
		ctx.Object, ctx.Operation = tt.obj, tt.op
		err := r.Check(ctx)
		if tt.ok != (err == nil) {
			t.Fatalf("%s %s: ok=%v err=%v", tt.op, tt.obj, tt.ok, err)
		}
	}
}

func TestGroupMembershipCheck(t *testing.T) {
	staff := principal.NewGlobal(grpSv, "staff")
	admin := principal.NewGlobal(grpSv, "admin")
	r := GroupMembership{Groups: []principal.Global{staff}}

	ctx := baseCtx()
	ctx.AssertedGroups = []principal.Global{staff}
	if err := r.Check(ctx); err != nil {
		t.Fatalf("granted membership denied: %v", err)
	}
	ctx.AssertedGroups = []principal.Global{admin}
	wantDenied(t, r.Check(ctx), TypeGroupMembership)
	ctx.AssertedGroups = []principal.Global{staff, admin}
	wantDenied(t, r.Check(ctx), TypeGroupMembership)
	ctx.AssertedGroups = nil
	if err := r.Check(ctx); err != nil {
		t.Fatalf("no assertion should pass: %v", err)
	}
}

type fakeRegistry struct {
	seen map[string]bool
	err  error
}

func (f *fakeRegistry) Accept(grantor, id string, _ time.Time) error {
	if f.err != nil {
		return f.err
	}
	key := grantor + "/" + id
	if f.seen[key] {
		return errors.New("duplicate")
	}
	if f.seen == nil {
		f.seen = map[string]bool{}
	}
	f.seen[key] = true
	return nil
}

func TestAcceptOnceCheck(t *testing.T) {
	r := AcceptOnce{ID: "check-42"}

	t.Run("no registry fails closed", func(t *testing.T) {
		wantDenied(t, r.Check(baseCtx()), TypeAcceptOnce)
	})

	t.Run("first accept ok, duplicate rejected", func(t *testing.T) {
		reg := &fakeRegistry{}
		ctx := baseCtx()
		ctx.AcceptOnce = reg
		if err := r.Check(ctx); err != nil {
			t.Fatalf("first: %v", err)
		}
		wantDenied(t, r.Check(ctx), TypeAcceptOnce)
	})

	t.Run("distinct grantors do not collide", func(t *testing.T) {
		reg := &fakeRegistry{}
		ctx1 := baseCtx()
		ctx1.AcceptOnce = reg
		ctx2 := baseCtx()
		ctx2.AcceptOnce = reg
		ctx2.GrantorKeyID = "other-grantor"
		if err := r.Check(ctx1); err != nil {
			t.Fatal(err)
		}
		if err := r.Check(ctx2); err != nil {
			t.Fatalf("other grantor rejected: %v", err)
		}
	})
}

func TestLimitCheck(t *testing.T) {
	inner := Set{Quota{Currency: "pages", Limit: 1}}
	r := Limit{Servers: []principal.ID{mailSv}, Restrictions: inner}

	// Not the named server: embedded restrictions ignored.
	ctx := baseCtx()
	ctx.Amounts["pages"] = 100
	if err := r.Check(ctx); err != nil {
		t.Fatalf("unlisted server enforced limit: %v", err)
	}
	// The named server enforces them.
	ctx.Server = mailSv
	wantDenied(t, r.Check(ctx), TypeQuota)
	ctx.Amounts["pages"] = 1
	if err := r.Check(ctx); err != nil {
		t.Fatalf("within limit denied: %v", err)
	}
}

func TestSetCheckConjunction(t *testing.T) {
	s := Set{
		IssuedFor{Servers: []principal.ID{fileSv}},
		Authorized{Entries: []AuthorizedEntry{{Object: "/etc/motd", Ops: []string{"read"}}}},
		Grantee{Principals: []principal.ID{alice}},
	}
	if err := s.Check(baseCtx()); err != nil {
		t.Fatalf("all-pass denied: %v", err)
	}
	ctx := baseCtx()
	ctx.Operation = "write"
	wantDenied(t, s.Check(ctx), TypeAuthorized)

	if err := Set(nil).Check(baseCtx()); err != nil {
		t.Fatalf("empty set denied: %v", err)
	}
}

func TestQuotaAccumulationIsMinimum(t *testing.T) {
	// Cascaded proxies each adding a quota: the effective limit is the
	// minimum because every restriction must pass.
	s := Set{
		Quota{Currency: "pages", Limit: 100},
		Quota{Currency: "pages", Limit: 10},
		Quota{Currency: "pages", Limit: 50},
	}
	ctx := baseCtx()
	ctx.Amounts["pages"] = 11
	wantDenied(t, s.Check(ctx), TypeQuota)
	ctx.Amounts["pages"] = 10
	if err := s.Check(ctx); err != nil {
		t.Fatal(err)
	}
	q := s.Quotas()
	if q["pages"] != 10 {
		t.Fatalf("Quotas() = %v", q)
	}
}

func TestHasGranteeAndGrantees(t *testing.T) {
	if (Set{Quota{Currency: "x", Limit: 1}}).HasGrantee(fileSv) {
		t.Fatal("quota-only set reported grantee")
	}
	s := Set{Grantee{Principals: []principal.ID{alice, bob}}}
	if !s.HasGrantee(fileSv) {
		t.Fatal("grantee not found")
	}
	gs := s.Grantees()
	if len(gs) != 2 {
		t.Fatalf("Grantees() = %v", gs)
	}

	// Grantee nested in a Limit applies only at the listed server.
	nested := Set{Limit{
		Servers:      []principal.ID{mailSv},
		Restrictions: Set{Grantee{Principals: []principal.ID{carol}}},
	}}
	if nested.HasGrantee(fileSv) {
		t.Fatal("limit-nested grantee leaked to other server")
	}
	if !nested.HasGrantee(mailSv) {
		t.Fatal("limit-nested grantee not seen at named server")
	}
}

func TestMergeIsAdditive(t *testing.T) {
	s1 := Set{Quota{Currency: "p", Limit: 5}}
	s2 := Set{IssuedFor{Servers: []principal.ID{fileSv}}}
	m := s1.Merge(s2)
	if len(m) != 2 {
		t.Fatalf("len = %d", len(m))
	}
	if len(s1) != 1 || len(s2) != 1 {
		t.Fatal("merge mutated inputs")
	}
}

func TestPropagate(t *testing.T) {
	limitMail := Limit{Servers: []principal.ID{mailSv}, Restrictions: Set{Quota{Currency: "p", Limit: 1}}}
	limitFile := Limit{Servers: []principal.ID{fileSv}, Restrictions: Set{Quota{Currency: "p", Limit: 2}}}
	q := Quota{Currency: "d", Limit: 9}
	s := Set{limitMail, limitFile, q}

	t.Run("unknown audience keeps everything", func(t *testing.T) {
		got := s.Propagate(nil)
		if len(got) != 3 {
			t.Fatalf("len = %d", len(got))
		}
	})
	t.Run("audience excludes irrelevant limits", func(t *testing.T) {
		got := s.Propagate([]principal.ID{fileSv})
		if len(got) != 2 {
			t.Fatalf("len = %d: %s", len(got), got)
		}
		types := got.SortedTypes()
		if len(types) != 2 || types[0] != TypeQuota || types[1] != TypeLimit {
			t.Fatalf("types = %v", types)
		}
	})
	t.Run("non-limit restrictions always propagate", func(t *testing.T) {
		got := s.Propagate([]principal.ID{principal.New("other", "R")})
		if len(got) != 1 {
			t.Fatalf("len = %d", len(got))
		}
		if got[0].Type() != TypeQuota {
			t.Fatalf("kept %s", got[0])
		}
	})
}

func TestSetString(t *testing.T) {
	if Set(nil).String() != "(unrestricted)" {
		t.Fatal(Set(nil).String())
	}
	s := Set{Quota{Currency: "pages", Limit: 3}, AcceptOnce{ID: "n1"}}
	str := s.String()
	for _, want := range []string{"quota(3 pages)", "accept-once(n1)", " & "} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		TypeGrantee:         "grantee",
		TypeForUseByGroup:   "for-use-by-group",
		TypeIssuedFor:       "issued-for",
		TypeQuota:           "quota",
		TypeAuthorized:      "authorized",
		TypeGroupMembership: "group-membership",
		TypeAcceptOnce:      "accept-once",
		TypeLimit:           "limit-restriction",
		Type(200):           "restriction(200)",
	} {
		if typ.String() != want {
			t.Fatalf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestRestrictionStrings(t *testing.T) {
	// Smoke-test every String for panics and basic content.
	rs := Set{
		Grantee{Principals: []principal.ID{alice}, Needed: 2},
		ForUseByGroup{Groups: []principal.Global{principal.NewGlobal(grpSv, "g")}},
		IssuedFor{Servers: []principal.ID{fileSv}},
		Quota{Currency: "c", Limit: 7},
		Authorized{Entries: []AuthorizedEntry{{Object: "o"}, {Object: "p", Ops: []string{"r", "w"}}}},
		GroupMembership{Groups: []principal.Global{principal.NewGlobal(grpSv, "g")}},
		AcceptOnce{ID: "i"},
		Limit{Servers: []principal.ID{mailSv}, Restrictions: Set{Quota{Currency: "c", Limit: 1}}},
	}
	for _, r := range rs {
		if r.String() == "" {
			t.Fatalf("%s has empty String", r.Type())
		}
		if !strings.Contains(r.String(), "") { // always true; exercises formatting
			continue
		}
	}
	if got := fmt.Sprint(rs[4]); !strings.Contains(got, "o:*") || !strings.Contains(got, "p:r|w") {
		t.Fatalf("authorized string = %q", got)
	}
}

func TestDeniedErrorMessage(t *testing.T) {
	err := denied(TypeQuota, "over by %d", 5)
	if !strings.Contains(err.Error(), "quota") || !strings.Contains(err.Error(), "over by 5") {
		t.Fatal(err.Error())
	}
}

func TestDepositToCheck(t *testing.T) {
	acct := principal.NewGlobal(principal.New("bank", "ISI.EDU"), "alice")
	other := principal.NewGlobal(principal.New("bank", "ISI.EDU"), "mallory")
	r := DepositTo{Account: acct}

	ctx := baseCtx()
	ctx.DepositAccount = acct
	if err := r.Check(ctx); err != nil {
		t.Fatalf("matching deposit denied: %v", err)
	}
	ctx.DepositAccount = other
	wantDenied(t, r.Check(ctx), TypeDepositTo)
	// No deposit at all also fails: the restriction demands one.
	ctx.DepositAccount = principal.Global{}
	wantDenied(t, r.Check(ctx), TypeDepositTo)

	if r.String() != "deposit-to(alice%bank@ISI.EDU)" {
		t.Fatal(r.String())
	}
	if TypeDepositTo.String() != "deposit-to" {
		t.Fatal(TypeDepositTo.String())
	}
}

func TestDepositToRoundTrip(t *testing.T) {
	acct := principal.NewGlobal(principal.New("bank", "ISI.EDU"), "alice")
	s := Set{DepositTo{Account: acct}}
	got, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != s.String() {
		t.Fatalf("round trip: %s != %s", got, s)
	}
}
