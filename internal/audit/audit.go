// Package audit records authorization decisions, preserving the audit
// trail that delegate proxies create: "An important difference between
// the two approaches to cascaded authorization is that the use of a
// delegate proxy leaves an audit trail since the new proxy identifies
// the intermediate server" (§3.4).
package audit

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"proxykit/internal/principal"
)

// Outcome classifies a decision.
type Outcome uint8

// Decision outcomes.
const (
	OutcomeGranted Outcome = iota + 1
	OutcomeDenied
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeGranted:
		return "GRANTED"
	case OutcomeDenied:
		return "DENIED"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Record is one authorization decision.
type Record struct {
	// Time of the decision.
	Time time.Time
	// Server that decided.
	Server principal.ID
	// Grantor whose rights were exercised (zero for direct requests by
	// the presenter's own identity).
	Grantor principal.ID
	// Presenters are the authenticated identities that made the request.
	Presenters []principal.ID
	// Trail lists delegate-cascade intermediates, in chain order.
	Trail []principal.ID
	// Object and Op name the requested action.
	Object string
	Op     string
	// Outcome and Reason summarize the decision.
	Outcome Outcome
	Reason  string
}

// String renders one line suitable for an audit log file.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s %q %q", r.Time.UTC().Format(time.RFC3339), r.Server, r.Outcome, r.Op, r.Object)
	if !r.Grantor.IsZero() {
		fmt.Fprintf(&b, " grantor=%s", r.Grantor)
	}
	if len(r.Presenters) > 0 {
		parts := make([]string, len(r.Presenters))
		for i, p := range r.Presenters {
			parts[i] = p.String()
		}
		fmt.Fprintf(&b, " by=%s", strings.Join(parts, ","))
	}
	if len(r.Trail) > 0 {
		parts := make([]string, len(r.Trail))
		for i, p := range r.Trail {
			parts[i] = p.String()
		}
		fmt.Fprintf(&b, " via=%s", strings.Join(parts, "->"))
	}
	if r.Reason != "" {
		fmt.Fprintf(&b, " reason=%q", r.Reason)
	}
	return b.String()
}

// Log is a bounded in-memory audit log. The zero value is unusable; use
// NewLog.
type Log struct {
	mu      sync.Mutex
	records []Record
	start   int
	count   int
}

// NewLog returns a log retaining up to capacity records (oldest evicted
// first).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Log{records: make([]Record, capacity)}
}

// Append stores a record, evicting the oldest when full.
func (l *Log) Append(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := (l.start + l.count) % len(l.records)
	l.records[idx] = r
	if l.count < len(l.records) {
		l.count++
	} else {
		l.start = (l.start + 1) % len(l.records)
	}
}

// Records returns the retained records, oldest first.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, l.count)
	for i := 0; i < l.count; i++ {
		out = append(out, l.records[(l.start+i)%len(l.records)])
	}
	return out
}

// Len reports the number of retained records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// ByGrantor returns retained records whose rights came from grantor.
func (l *Log) ByGrantor(grantor principal.ID) []Record {
	var out []Record
	for _, r := range l.Records() {
		if r.Grantor == grantor {
			out = append(out, r)
		}
	}
	return out
}

// ByIntermediate returns retained records whose delegation trail
// includes id — the query the paper's audit-trail argument enables.
func (l *Log) ByIntermediate(id principal.ID) []Record {
	var out []Record
	for _, r := range l.Records() {
		for _, t := range r.Trail {
			if t == id {
				out = append(out, r)
				break
			}
		}
	}
	return out
}
