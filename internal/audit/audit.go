// Package audit records authorization decisions, preserving the audit
// trail that delegate proxies create: "An important difference between
// the two approaches to cascaded authorization is that the use of a
// delegate proxy leaves an audit trail since the new proxy identifies
// the intermediate server" (§3.4).
package audit

import (
	"fmt"
	"strings"
	"time"

	"proxykit/internal/principal"
)

// Outcome classifies a decision.
type Outcome uint8

// Decision outcomes.
const (
	OutcomeGranted Outcome = iota + 1
	OutcomeDenied
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeGranted:
		return "GRANTED"
	case OutcomeDenied:
		return "DENIED"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Record is one auditable decision. Seq, Prev, and Hash are assigned
// by Journal.Append; everything else is supplied by the emitter.
type Record struct {
	// Seq is the record's 1-based position in its journal.
	Seq uint64
	// Time of the decision.
	Time time.Time
	// Kind classifies the decision point (one of the Kind* constants).
	Kind string
	// Server that decided.
	Server principal.ID
	// TraceID joins the record to the RPC trace span (internal/obs)
	// that carried the request; "" for local/in-process calls.
	TraceID string
	// Grantor whose rights were exercised (zero for direct requests by
	// the presenter's own identity).
	Grantor principal.ID
	// Presenters are the authenticated identities that made the request.
	Presenters []principal.ID
	// Trail lists delegate-cascade intermediates, in chain order.
	Trail []principal.ID
	// Object and Op name the requested action.
	Object string
	Op     string
	// Outcome and Reason summarize the decision.
	Outcome Outcome
	Reason  string
	// Detail carries kind-specific fields (amounts, check numbers,
	// next-hop banks) as strings.
	Detail map[string]string
	// Prev is the hex SHA-256 chain hash of the preceding record
	// ("" for the first), Hash the record's own: SHA-256 over the
	// canonical JSON with Hash empty.
	Prev string
	Hash string
}

// String renders one line suitable for an audit log file.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s %q %q", r.Time.UTC().Format(time.RFC3339), r.Server, r.Outcome, r.Op, r.Object)
	if r.Kind != "" {
		fmt.Fprintf(&b, " kind=%s", r.Kind)
	}
	if r.TraceID != "" {
		fmt.Fprintf(&b, " trace=%s", r.TraceID)
	}
	if !r.Grantor.IsZero() {
		fmt.Fprintf(&b, " grantor=%s", r.Grantor)
	}
	if len(r.Presenters) > 0 {
		parts := make([]string, len(r.Presenters))
		for i, p := range r.Presenters {
			parts[i] = p.String()
		}
		fmt.Fprintf(&b, " by=%s", strings.Join(parts, ","))
	}
	if len(r.Trail) > 0 {
		parts := make([]string, len(r.Trail))
		for i, p := range r.Trail {
			parts[i] = p.String()
		}
		fmt.Fprintf(&b, " via=%s", strings.Join(parts, "->"))
	}
	if r.Reason != "" {
		fmt.Fprintf(&b, " reason=%q", r.Reason)
	}
	return b.String()
}

// Log is a bounded in-memory audit log: the original package API, now
// a thin view over a hash-chained Journal with a memory-only sink, so
// records appended through it still carry Seq/Prev/Hash and can be
// chain-verified. The zero value is unusable; use NewLog.
type Log struct {
	j *Journal
}

// NewLog returns a log retaining up to capacity records (oldest evicted
// first).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Log{j: NewMemory(capacity)}
}

// Journal exposes the underlying journal (for chain stats, HTTP
// serving, or attaching the same sink to a server).
func (l *Log) Journal() *Journal { return l.j }

// Append seals a record into the log's chain, evicting the oldest
// retained record when full.
func (l *Log) Append(r Record) {
	l.j.Append(r)
}

// Records returns the retained records, oldest first.
func (l *Log) Records() []Record {
	return l.j.Tail(0)
}

// Len reports the number of retained records.
func (l *Log) Len() int {
	return len(l.j.Tail(0))
}

// ByGrantor returns retained records whose rights came from grantor.
func (l *Log) ByGrantor(grantor principal.ID) []Record {
	var out []Record
	for _, r := range l.Records() {
		if r.Grantor == grantor {
			out = append(out, r)
		}
	}
	return out
}

// ByIntermediate returns retained records whose delegation trail
// includes id — the query the paper's audit-trail argument enables.
func (l *Log) ByIntermediate(id principal.ID) []Record {
	var out []Record
	for _, r := range l.Records() {
		for _, t := range r.Trail {
			if t == id {
				out = append(out, r)
				break
			}
		}
	}
	return out
}
