package audit

// Verified walks and torn-tail repair over journal files. These are the
// hooks the soak verifier and crash-recovery controllers use to re-read
// a journal while (or after) another process wrote it: every record
// handed to the callback has already passed the hash-chain check, and a
// file whose final line was cut short by a SIGKILL can be repaired
// without accepting any deeper damage.

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// WalkReader re-walks the hash chain of a JSONL journal stream, calling
// fn for each chain-verified record in order. It returns the number of
// verified records and the first break found (malformed line, hash
// mismatch, sequence or prev-link break).
func WalkReader(r io.Reader, fn func(Record)) (int, error) {
	n := 0
	err := walkChain(r, func(w wireRecord) {
		n++
		if fn != nil {
			fn(fromWire(w))
		}
	})
	return n, err
}

// WalkFile is WalkReader over a journal file.
func WalkFile(path string, fn func(Record)) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return WalkReader(f, fn)
}

// RepairTornTail truncates a journal file whose final line was torn by
// a crash mid-append, so New can replay it. Only the last line may be
// dropped: if the chain still fails to verify after trimming it, the
// damage is deeper than a torn tail and the original error is returned
// with the file untouched. It reports whether a truncation happened.
func RepairTornTail(path string) (bool, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if _, err := VerifyReader(bytes.NewReader(raw)); err == nil {
		return false, nil
	}
	trimmed := raw
	if i := bytes.LastIndexByte(bytes.TrimRight(trimmed, "\n"), '\n'); i >= 0 {
		trimmed = trimmed[:i+1]
	} else {
		trimmed = nil
	}
	if _, err := VerifyReader(bytes.NewReader(trimmed)); err != nil {
		return false, fmt.Errorf("audit: %s: chain broken beyond a torn tail: %w", path, err)
	}
	// trimmed is a prefix of the file: truncate in place rather than
	// rewriting, so the intact chain bytes are never re-written at all.
	if err := os.Truncate(path, int64(len(trimmed))); err != nil {
		return false, fmt.Errorf("audit: repair %s: %w", path, err)
	}
	return true, nil
}
