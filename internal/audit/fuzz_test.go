package audit

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzChain builds a small valid journal file's bytes for the corpus.
func fuzzChain(t interface{ Fatal(...any) }, n int) []byte {
	dir, err := os.MkdirTemp("", "audit-fuzz-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "audit.jsonl")
	j, err := New(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		j.Append(Record{
			Kind:    KindDeposit,
			Object:  "acct:carol",
			Op:      "credit",
			Outcome: OutcomeGranted,
			Detail:  map[string]string{"number": "ck-001", "amount": "10"},
		})
	}
	_ = j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// FuzzVerifyFile drives the journal chain verifier and walker over
// arbitrary bytes: they must never panic, must agree with each other on
// both the verified-record count and the verdict, and RepairTornTail
// must only ever produce a file that verifies — or leave the file
// alone.
func FuzzVerifyFile(f *testing.F) {
	valid := fuzzChain(f, 3)
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), []byte(`{"torn":`)...))
	f.Add([]byte("not json\n"))
	f.Add([]byte{})
	// Flip a byte mid-chain: tampering, not a torn tail.
	tampered := append([]byte{}, valid...)
	if len(tampered) > 4 {
		tampered[len(tampered)/2] ^= 0x20
	}
	f.Add(tampered)

	f.Fuzz(func(t *testing.T, data []byte) {
		vn, verr := VerifyReader(bytes.NewReader(data))
		wn, werr := WalkReader(bytes.NewReader(data), func(Record) {})
		if vn != wn {
			t.Fatalf("VerifyReader saw %d records, WalkReader %d", vn, wn)
		}
		if (verr == nil) != (werr == nil) {
			t.Fatalf("verdicts disagree: verify=%v walk=%v", verr, werr)
		}

		dir := t.TempDir()
		path := filepath.Join(dir, "audit.jsonl")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		repaired, rerr := RepairTornTail(path)
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if verr == nil {
			// A valid chain must never be "repaired".
			if repaired || rerr != nil || !bytes.Equal(after, data) {
				t.Fatalf("valid chain altered: repaired=%v err=%v", repaired, rerr)
			}
			return
		}
		if rerr != nil {
			// Damage beyond a torn tail: the file must be untouched.
			if !bytes.Equal(after, data) {
				t.Fatal("RepairTornTail modified a file it refused to repair")
			}
			return
		}
		// Repair claimed success: the result must verify and be a prefix.
		if _, err := VerifyReader(bytes.NewReader(after)); err != nil {
			t.Fatalf("repaired file still broken: %v", err)
		}
		if !bytes.HasPrefix(data, after) {
			t.Fatal("repair produced bytes that are not a prefix of the original")
		}
	})
}
