package audit

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"proxykit/internal/principal"
)

// Record kinds, one per auditable decision point. Every kind must be
// documented in OBSERVABILITY.md (enforced by the doc-catalogue test).
const (
	// KindAuthorize is an end-server authorization decision (§3.5),
	// carrying the full delegate-cascade Trail of §3.4.
	KindAuthorize = "end.authorize"
	// KindAuthzGrant is an authorization-server proxy grant or refusal
	// (§3.2, Fig. 3).
	KindAuthzGrant = "authz.grant"
	// KindGroupGrant is a group-membership proxy grant or refusal (§3.3).
	KindGroupGrant = "group.grant"
	// KindTransfer is a local accounting transfer, including quota
	// allocate/release (§4).
	KindTransfer = "acct.transfer"
	// KindCheckWrite is a check written as a signed numbered delegate
	// proxy (§4, Fig. 5).
	KindCheckWrite = "acct.check-write"
	// KindDeposit is a check deposit decision, granted or denied.
	KindDeposit = "acct.deposit"
	// KindClearingHop is a check endorsed onward to a correspondent
	// bank for collection (Fig. 5).
	KindClearingHop = "acct.clearing-hop"
	// KindAcceptOnceReject is a deposit refused because the check
	// number was already accepted (§7.7).
	KindAcceptOnceReject = "acct.accept-once-reject"
	// KindHold is a certified-check hold placed (or refused).
	KindHold = "acct.hold"
	// KindHoldRelease is an expired certified-check hold returned to
	// its account.
	KindHoldRelease = "acct.hold-release"
	// KindGatewayMap is a gateway token/impersonation mapping decision:
	// an external identity admitted as (or refused) a local principal.
	KindGatewayMap = "gateway.map"
	// KindGatewayRequest is one HTTP operation forwarded (or refused)
	// by the gateway on behalf of a mapped principal.
	KindGatewayRequest = "gateway.request"
	// KindGatewayRenew is a background proxy-cache renewal outcome.
	KindGatewayRenew = "gateway.proxy-renew"
)

// Kinds returns every record kind the tree can emit, sorted.
func Kinds() []string {
	return []string{
		KindAuthzGrant,
		KindAcceptOnceReject,
		KindCheckWrite,
		KindClearingHop,
		KindDeposit,
		KindHold,
		KindHoldRelease,
		KindTransfer,
		KindAuthorize,
		KindGatewayMap,
		KindGatewayRenew,
		KindGatewayRequest,
		KindGroupGrant,
	}
}

// wireRecord is the canonical JSON form of a Record: the exact bytes
// hashed into the chain and appended to the journal file. Field order
// is fixed by this struct, principals render as "name@REALM" strings,
// and time as RFC3339Nano UTC, so hashing is deterministic across
// processes.
type wireRecord struct {
	Seq        uint64            `json:"seq"`
	Time       string            `json:"time"`
	Kind       string            `json:"kind,omitempty"`
	Server     string            `json:"server,omitempty"`
	TraceID    string            `json:"traceId,omitempty"`
	Grantor    string            `json:"grantor,omitempty"`
	Presenters []string          `json:"presenters,omitempty"`
	Trail      []string          `json:"trail,omitempty"`
	Object     string            `json:"object,omitempty"`
	Op         string            `json:"op,omitempty"`
	Outcome    string            `json:"outcome,omitempty"`
	Reason     string            `json:"reason,omitempty"`
	Detail     map[string]string `json:"detail,omitempty"`
	Prev       string            `json:"prev"`
	Hash       string            `json:"hash,omitempty"`
}

func idString(id principal.ID) string {
	if id.IsZero() {
		return ""
	}
	return id.String()
}

func parseID(s string) principal.ID {
	if s == "" {
		return principal.ID{}
	}
	id, err := principal.Parse(s)
	if err != nil {
		return principal.ID{Name: s}
	}
	return id
}

func idStrings(ids []principal.ID) []string {
	if len(ids) == 0 {
		return nil
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id.String()
	}
	return out
}

func parseIDs(ss []string) []principal.ID {
	if len(ss) == 0 {
		return nil
	}
	out := make([]principal.ID, len(ss))
	for i, s := range ss {
		out[i] = parseID(s)
	}
	return out
}

func outcomeString(o Outcome) string {
	if o == 0 {
		return ""
	}
	return o.String()
}

func parseOutcome(s string) Outcome {
	switch s {
	case "":
		return 0
	case "GRANTED":
		return OutcomeGranted
	case "DENIED":
		return OutcomeDenied
	}
	var n uint8
	if _, err := fmt.Sscanf(s, "outcome(%d)", &n); err == nil {
		return Outcome(n)
	}
	return 0
}

func toWire(r Record) wireRecord {
	return wireRecord{
		Seq:        r.Seq,
		Time:       r.Time.UTC().Format(time.RFC3339Nano),
		Kind:       r.Kind,
		Server:     idString(r.Server),
		TraceID:    r.TraceID,
		Grantor:    idString(r.Grantor),
		Presenters: idStrings(r.Presenters),
		Trail:      idStrings(r.Trail),
		Object:     r.Object,
		Op:         r.Op,
		Outcome:    outcomeString(r.Outcome),
		Reason:     r.Reason,
		Detail:     r.Detail,
		Prev:       r.Prev,
		Hash:       r.Hash,
	}
}

func fromWire(w wireRecord) Record {
	t, err := time.Parse(time.RFC3339Nano, w.Time)
	if err != nil {
		t = time.Time{}
	}
	return Record{
		Seq:        w.Seq,
		Time:       t,
		Kind:       w.Kind,
		Server:     parseID(w.Server),
		TraceID:    w.TraceID,
		Grantor:    parseID(w.Grantor),
		Presenters: parseIDs(w.Presenters),
		Trail:      parseIDs(w.Trail),
		Object:     w.Object,
		Op:         w.Op,
		Outcome:    parseOutcome(w.Outcome),
		Reason:     w.Reason,
		Detail:     w.Detail,
		Prev:       w.Prev,
		Hash:       w.Hash,
	}
}

// hashWire computes the chain hash of a wire record: the hex SHA-256 of
// its canonical JSON with the Hash field empty. Prev is included, so
// each hash commits to the entire prefix of the journal.
func hashWire(w wireRecord) string {
	w.Hash = ""
	b, err := json.Marshal(w)
	if err != nil {
		// wireRecord contains only strings and maps of strings;
		// Marshal cannot fail on it.
		panic("audit: marshal wire record: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Stats summarizes a journal for health reporting.
type Stats struct {
	// Records is the total number of records ever appended (the last
	// sequence number), including records replayed from an existing
	// file at open.
	Records uint64 `json:"records"`
	// LastHash is the chain hash of the most recent record, "" when
	// the journal is empty.
	LastHash string `json:"lastHash"`
	// Path is the backing file, "" for memory-only journals.
	Path string `json:"path,omitempty"`
	// WriteErrors counts file appends that failed (records are still
	// chained in memory).
	WriteErrors uint64 `json:"writeErrors,omitempty"`
}

// Options configures a Journal.
type Options struct {
	// Tail bounds the in-memory tail served over HTTP and Tail();
	// <= 0 defaults to 1024.
	Tail int
	// Path, when non-empty, appends each record as one JSONL line to
	// this file. An existing file is replayed at open: the chain is
	// verified and new records extend it.
	Path string
	// Logger, when non-nil, mirrors each record at Info level.
	Logger *slog.Logger
}

// Journal is an append-only, hash-chained audit record stream: each
// record carries the hex SHA-256 of its predecessor, so truncating or
// altering any prefix is detectable by re-walking the chain
// (VerifyReader). Records are kept in a bounded in-memory tail and,
// when Options.Path is set, durably as JSON lines.
type Journal struct {
	mu       sync.Mutex
	tail     []Record
	start    int
	count    int
	seq      uint64
	lastHash string
	f        *os.File
	path     string
	logger   *slog.Logger
	writeErr uint64
}

// NewMemory returns a memory-only journal retaining up to tailCap
// records.
func NewMemory(tailCap int) *Journal {
	j, err := New(Options{Tail: tailCap})
	if err != nil {
		panic("audit: memory journal: " + err.Error())
	}
	return j
}

// New opens a journal. With Options.Path set, an existing file is
// replayed (chain-verified — a tampered file refuses to open) and new
// records extend its chain.
func New(o Options) (*Journal, error) {
	if o.Tail <= 0 {
		o.Tail = 1024
	}
	j := &Journal{tail: make([]Record, o.Tail), logger: o.Logger, path: o.Path}
	if o.Path == "" {
		return j, nil
	}
	if err := j.replay(o.Path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(o.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("audit: open journal: %w", err)
	}
	j.f = f
	return j, nil
}

// replay loads an existing journal file, verifying the chain and
// restoring seq/lastHash and the in-memory tail.
func (j *Journal) replay(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("audit: open journal: %w", err)
	}
	defer f.Close()
	err = walkChain(f, func(w wireRecord) {
		j.seq = w.Seq
		j.lastHash = w.Hash
		j.push(fromWire(w))
	})
	if err != nil {
		return fmt.Errorf("audit: replay %s: %w", path, err)
	}
	return nil
}

// push appends to the bounded tail ring; callers hold j.mu (or have
// exclusive access during replay).
func (j *Journal) push(r Record) {
	idx := (j.start + j.count) % len(j.tail)
	j.tail[idx] = r
	if j.count < len(j.tail) {
		j.count++
	} else {
		j.start = (j.start + 1) % len(j.tail)
	}
}

// Append seals r into the chain: assigns the next sequence number,
// links Prev to the last chain hash, computes the record's own hash,
// stores it in the tail, appends one JSONL line to the backing file,
// and mirrors it to the logger. The sealed record is returned.
func (j *Journal) Append(r Record) Record {
	j.mu.Lock()
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	r.Time = r.Time.UTC()
	j.seq++
	r.Seq = j.seq
	r.Prev = j.lastHash
	w := toWire(r)
	r.Hash = hashWire(w)
	w.Hash = r.Hash
	j.lastHash = r.Hash
	j.push(r)
	if j.f != nil {
		line, err := json.Marshal(w)
		if err == nil {
			// One Write call per record: O_APPEND makes the line
			// append atomic with respect to other writers, the
			// statefile idiom applied to a log.
			_, err = j.f.Write(append(line, '\n'))
		}
		if err != nil {
			j.writeErr++
		}
	}
	logger := j.logger
	j.mu.Unlock()
	if logger != nil {
		logger.Info("audit",
			"seq", r.Seq,
			"kind", r.Kind,
			"outcome", outcomeString(r.Outcome),
			"server", idString(r.Server),
			"op", r.Op,
			"object", r.Object,
			"trace", r.TraceID,
			"reason", r.Reason,
			"hash", r.Hash,
		)
	}
	return r
}

// Tail returns retained records with Seq > since, oldest first. Records
// older than the in-memory tail are only available from the file sink.
func (j *Journal) Tail(since uint64) []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, 0, j.count)
	for i := 0; i < j.count; i++ {
		r := j.tail[(j.start+i)%len(j.tail)]
		if r.Seq > since {
			out = append(out, r)
		}
	}
	return out
}

// Stats reports the journal's totals for health endpoints.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{Records: j.seq, LastHash: j.lastHash, Path: j.path, WriteErrors: j.writeErr}
}

// Health summarizes journal state as /healthz document fields.
func (j *Journal) Health() map[string]any {
	st := j.Stats()
	h := map[string]any{
		"auditRecords":     st.Records,
		"auditLastHash":    st.LastHash,
		"auditWriteErrors": st.WriteErrors,
	}
	if st.Path != "" {
		h["auditPath"] = st.Path
	}
	return h
}

// Close closes the backing file, if any.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// ServeHTTP serves the in-memory tail as JSON. Cursor semantics:
// ?since=<seq> returns records with Seq > since (at most ?limit); the
// response's "cursor" is the highest Seq returned — feed it back as
// the next request's since. "oldest" is the oldest retained Seq; a
// since below oldest-1 means records have rotated out of the tail and
// only the file sink has them.
func (j *Journal) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	since, _ := strconv.ParseUint(req.URL.Query().Get("since"), 10, 64)
	limit, _ := strconv.Atoi(req.URL.Query().Get("limit"))
	recs := j.Tail(since)
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	st := j.Stats()
	cursor := since
	wires := make([]wireRecord, len(recs))
	for i, r := range recs {
		wires[i] = toWire(r)
		cursor = r.Seq
	}
	var oldest uint64
	if all := j.Tail(0); len(all) > 0 {
		oldest = all[0].Seq
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Total    uint64       `json:"total"`
		LastHash string       `json:"lastHash"`
		Oldest   uint64       `json:"oldest"`
		Cursor   uint64       `json:"cursor"`
		Records  []wireRecord `json:"records"`
	}{st.Records, st.LastHash, oldest, cursor, wires})
}

// walkChain scans JSONL records from r, re-verifying the hash chain,
// and calls fn for each valid record. It returns the first break:
// malformed line, hash mismatch (tampering), or prev-link mismatch
// (truncation/splice).
func walkChain(r io.Reader, fn func(wireRecord)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	prev := ""
	var seq uint64
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var w wireRecord
		if err := json.Unmarshal(raw, &w); err != nil {
			return fmt.Errorf("line %d: malformed record: %w", line, err)
		}
		if w.Seq != seq+1 {
			return fmt.Errorf("line %d: sequence break: have %d, want %d", line, w.Seq, seq+1)
		}
		if w.Prev != prev {
			return fmt.Errorf("line %d: chain break: prev hash %.12q does not match %.12q", line, w.Prev, prev)
		}
		if got := hashWire(w); got != w.Hash {
			return fmt.Errorf("line %d: record tampered: stored hash %.12q, recomputed %.12q", line, w.Hash, got)
		}
		seq = w.Seq
		prev = w.Hash
		if fn != nil {
			fn(w)
		}
	}
	return sc.Err()
}

// VerifyReader re-walks the hash chain of a JSONL journal stream,
// returning the number of intact records and the first break found.
func VerifyReader(r io.Reader) (int, error) {
	n := 0
	err := walkChain(r, func(wireRecord) { n++ })
	return n, err
}

// VerifyFile re-walks the hash chain of a journal file.
func VerifyFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return VerifyReader(f)
}

// VerifyChain re-verifies an in-memory record slice (e.g. a journal
// tail) the same way VerifyReader checks a file.
func VerifyChain(recs []Record) error {
	prev := ""
	for i, r := range recs {
		if i > 0 && r.Seq != recs[i-1].Seq+1 {
			return fmt.Errorf("record %d: sequence break: have %d, want %d", i, r.Seq, recs[i-1].Seq+1)
		}
		if i > 0 && r.Prev != prev {
			return fmt.Errorf("record %d: chain break: prev hash %.12q does not match %.12q", i, r.Prev, prev)
		}
		if got := hashWire(toWire(r)); got != r.Hash {
			return fmt.Errorf("record %d: record tampered: stored hash %.12q, recomputed %.12q", i, r.Hash, got)
		}
		prev = r.Hash
	}
	return nil
}

// MarshalJSON renders the record in its canonical wire form, so tails
// served over HTTP and journal lines look identical.
func (r Record) MarshalJSON() ([]byte, error) { return json.Marshal(toWire(r)) }

// UnmarshalJSON parses the canonical wire form.
func (r *Record) UnmarshalJSON(b []byte) error {
	var w wireRecord
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = fromWire(w)
	return nil
}
