package audit

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"proxykit/internal/principal"
)

var (
	jAlice = principal.New("alice", "ISI.EDU")
	jSrv   = principal.New("file/srv", "ISI.EDU")
)

func journalRecord(op string) Record {
	return Record{
		Kind:       KindAuthorize,
		Server:     jSrv,
		TraceID:    "abc123",
		Presenters: []principal.ID{jAlice},
		Object:     "/etc/motd",
		Op:         op,
		Outcome:    OutcomeGranted,
		Detail:     map[string]string{"note": "test"},
	}
}

func TestJournalChainsRecords(t *testing.T) {
	j := NewMemory(16)
	r1 := j.Append(journalRecord("read"))
	r2 := j.Append(journalRecord("write"))
	if r1.Seq != 1 || r2.Seq != 2 {
		t.Fatalf("seq = %d, %d; want 1, 2", r1.Seq, r2.Seq)
	}
	if r1.Prev != "" {
		t.Fatalf("genesis Prev = %q; want empty", r1.Prev)
	}
	if r2.Prev != r1.Hash {
		t.Fatalf("r2.Prev = %q; want r1.Hash %q", r2.Prev, r1.Hash)
	}
	if len(r1.Hash) != 64 {
		t.Fatalf("hash length = %d; want 64 hex chars", len(r1.Hash))
	}
	if err := VerifyChain(j.Tail(0)); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	st := j.Stats()
	if st.Records != 2 || st.LastHash != r2.Hash {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVerifyChainDetectsTampering(t *testing.T) {
	j := NewMemory(16)
	j.Append(journalRecord("read"))
	j.Append(journalRecord("write"))
	recs := j.Tail(0)
	recs[0].Object = "/etc/shadow"
	if err := VerifyChain(recs); err == nil || !strings.Contains(err.Error(), "tampered") {
		t.Fatalf("VerifyChain after edit = %v; want tamper error", err)
	}
}

func TestJournalFileSinkAndVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := New(Options{Path: path, Tail: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		j.Append(journalRecord("read"))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := VerifyFile(path)
	if err != nil {
		t.Fatalf("VerifyFile: %v", err)
	}
	if n != 5 {
		t.Fatalf("verified %d records; want 5", n)
	}
}

func TestJournalFlippedByteDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := New(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalRecord("read"))
	j.Append(journalRecord("write"))
	j.Append(journalRecord("delete"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the second record's object path.
	idx := bytes.Index(raw, []byte("motd"))
	idx = bytes.Index(raw[idx+1:], []byte("motd")) + idx + 1
	tampered := append([]byte(nil), raw...)
	tampered[idx] ^= 0x01
	if err := os.WriteFile(path, tampered, 0o600); err != nil {
		t.Fatal(err)
	}
	n, err := VerifyFile(path)
	if err == nil {
		t.Fatal("VerifyFile accepted a flipped byte")
	}
	if n != 1 {
		t.Fatalf("verified %d records before the break; want 1", n)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name line 2", err)
	}
}

func TestJournalTruncationDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := New(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j.Append(journalRecord("read"))
	}
	j.Close()
	raw, _ := os.ReadFile(path)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	// Drop the middle record: the splice breaks both seq and prev.
	spliced := append(append([]byte(nil), lines[0]...), lines[2]...)
	os.WriteFile(path, spliced, 0o600)
	if _, err := VerifyFile(path); err == nil {
		t.Fatal("VerifyFile accepted a spliced journal")
	}
}

func TestJournalReplayResumesChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := New(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalRecord("read"))
	last := j.Append(journalRecord("write"))
	j.Close()

	j2, err := New(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	st := j2.Stats()
	if st.Records != 2 || st.LastHash != last.Hash {
		t.Fatalf("after replay stats = %+v; want 2 records, last hash %q", st, last.Hash)
	}
	r3 := j2.Append(journalRecord("delete"))
	if r3.Seq != 3 || r3.Prev != last.Hash {
		t.Fatalf("resumed record = seq %d prev %q; want 3, %q", r3.Seq, r3.Prev, last.Hash)
	}
	j2.Close()
	if n, err := VerifyFile(path); err != nil || n != 3 {
		t.Fatalf("VerifyFile after resume = %d, %v; want 3, nil", n, err)
	}
}

func TestJournalRefusesTamperedFileAtOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _ := New(Options{Path: path})
	j.Append(journalRecord("read"))
	j.Close()
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, bytes.Replace(raw, []byte("motd"), []byte("mote"), 1), 0o600)
	if _, err := New(Options{Path: path}); err == nil {
		t.Fatal("New opened a tampered journal")
	}
}

func TestJournalHTTPCursor(t *testing.T) {
	j := NewMemory(4)
	for i := 0; i < 6; i++ {
		j.Append(journalRecord("read"))
	}
	// Tail capacity 4 retains seqs 3..6.
	srv := httptest.NewServer(j)
	defer srv.Close()
	get := func(url string) map[string]any {
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}
	body := get(srv.URL + "/audit?since=4")
	if got := body["total"].(float64); got != 6 {
		t.Fatalf("total = %v; want 6", got)
	}
	if got := body["oldest"].(float64); got != 3 {
		t.Fatalf("oldest = %v; want 3", got)
	}
	recs := body["records"].([]any)
	if len(recs) != 2 {
		t.Fatalf("since=4 returned %d records; want 2", len(recs))
	}
	if got := body["cursor"].(float64); got != 6 {
		t.Fatalf("cursor = %v; want 6", got)
	}
	// Feeding the cursor back yields nothing new.
	if more := get(srv.URL + "/audit?since=6")["records"].([]any); len(more) != 0 {
		t.Fatalf("since=cursor returned %d records; want 0", len(more))
	}
	if limited := get(srv.URL + "/audit?since=0&limit=1")["records"].([]any); len(limited) != 1 {
		t.Fatalf("limit=1 returned %d records", len(limited))
	}
}

func TestJournalMirrorsToSlog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	j, err := New(Options{Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalRecord("read"))
	out := buf.String()
	for _, want := range []string{"msg=audit", "kind=end.authorize", "outcome=GRANTED", "trace=abc123"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slog mirror %q missing %q", out, want)
		}
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	j := NewMemory(4)
	in := journalRecord("read")
	in.Grantor = jAlice
	in.Trail = []principal.ID{jSrv}
	in.Time = time.Date(2026, 8, 5, 12, 0, 0, 12345, time.UTC)
	sealed := j.Append(in)
	b, err := json.Marshal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Grantor != jAlice || back.Server != jSrv || len(back.Trail) != 1 || back.Trail[0] != jSrv {
		t.Fatalf("round trip lost principals: %+v", back)
	}
	if !back.Time.Equal(sealed.Time) {
		t.Fatalf("round trip time = %v; want %v", back.Time, sealed.Time)
	}
	if back.Hash != sealed.Hash || back.Prev != sealed.Prev || back.Outcome != sealed.Outcome {
		t.Fatalf("round trip lost chain fields: %+v", back)
	}
	if err := VerifyChain([]Record{back}); err != nil {
		t.Fatalf("VerifyChain on round-tripped record: %v", err)
	}
}

func TestKindsAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		if seen[k] {
			t.Fatalf("duplicate kind %q", k)
		}
		seen[k] = true
	}
	if len(seen) != 13 {
		t.Fatalf("got %d kinds; want 13", len(seen))
	}
}
