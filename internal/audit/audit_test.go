package audit

import (
	"strings"
	"testing"
	"time"

	"proxykit/internal/principal"
)

var (
	alice = principal.New("alice", "ISI.EDU")
	bob   = principal.New("bob", "ISI.EDU")
	spool = principal.New("spooler", "ISI.EDU")
	srv   = principal.New("file/sv1", "ISI.EDU")
)

func sample(op string, outcome Outcome) Record {
	return Record{
		Time:       time.Unix(1_000_000, 0),
		Server:     srv,
		Grantor:    alice,
		Presenters: []principal.ID{bob},
		Trail:      []principal.ID{spool},
		Object:     "/etc/motd",
		Op:         op,
		Outcome:    outcome,
		Reason:     "quota exceeded",
	}
}

func TestAppendAndRecords(t *testing.T) {
	l := NewLog(10)
	l.Append(sample("read", OutcomeGranted))
	l.Append(sample("write", OutcomeDenied))
	rs := l.Records()
	if len(rs) != 2 || l.Len() != 2 {
		t.Fatalf("records = %d", len(rs))
	}
	if rs[0].Op != "read" || rs[1].Op != "write" {
		t.Fatalf("order wrong: %v", rs)
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(3)
	for i, op := range []string{"a", "b", "c", "d", "e"} {
		r := sample(op, OutcomeGranted)
		r.Time = time.Unix(int64(i), 0)
		l.Append(r)
	}
	rs := l.Records()
	if len(rs) != 3 {
		t.Fatalf("len = %d", len(rs))
	}
	if rs[0].Op != "c" || rs[2].Op != "e" {
		t.Fatalf("eviction order wrong: %v", []string{rs[0].Op, rs[1].Op, rs[2].Op})
	}
}

func TestByGrantorAndIntermediate(t *testing.T) {
	l := NewLog(10)
	l.Append(sample("read", OutcomeGranted))
	other := sample("read", OutcomeGranted)
	other.Grantor = bob
	other.Trail = nil
	l.Append(other)

	if got := l.ByGrantor(alice); len(got) != 1 {
		t.Fatalf("by grantor = %d", len(got))
	}
	if got := l.ByIntermediate(spool); len(got) != 1 {
		t.Fatalf("by intermediate = %d", len(got))
	}
	if got := l.ByIntermediate(bob); len(got) != 0 {
		t.Fatalf("phantom intermediate = %d", len(got))
	}
}

func TestRecordString(t *testing.T) {
	s := sample("read", OutcomeDenied).String()
	for _, want := range []string{"DENIED", "file/sv1@ISI.EDU", "grantor=alice@ISI.EDU", "by=bob@ISI.EDU", "via=spooler@ISI.EDU", `reason="quota exceeded"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("record %q missing %q", s, want)
		}
	}
	minimal := Record{Time: time.Unix(0, 0), Server: srv, Op: "read", Object: "/x", Outcome: OutcomeGranted}
	if s := minimal.String(); strings.Contains(s, "grantor=") || strings.Contains(s, "via=") {
		t.Fatalf("minimal record has empty fields: %q", s)
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeGranted.String() != "GRANTED" || OutcomeDenied.String() != "DENIED" {
		t.Fatal("outcome strings")
	}
	if Outcome(9).String() != "outcome(9)" {
		t.Fatal(Outcome(9).String())
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	l := NewLog(0)
	l.Append(sample("read", OutcomeGranted))
	if l.Len() != 1 {
		t.Fatal("default capacity log broken")
	}
}
