// Package proxykit is a Go implementation of the restricted-proxy model
// for distributed authorization and accounting, reproducing:
//
//	B. Clifford Neuman, "Proxy-Based Authorization and Accounting for
//	Distributed Systems", Proc. 13th International Conference on
//	Distributed Computing Systems (ICDCS), 1993.
//
// A restricted proxy is a signed certificate that lets its holder
// operate with the (restricted) rights of the principal that granted
// it. On this single primitive the library builds capabilities,
// authorization servers, group servers, cascaded delegation, and a
// full distributed accounting service with checks, endorsements, and
// multi-bank clearing.
//
// This root package is the public API: type aliases over the internal
// packages plus the Realm convenience for wiring an in-process
// deployment. Deeper control (Kerberos integration, custom transports,
// baselines) is available through the cmd/ daemons and documented in
// DESIGN.md.
//
// # Quick start
//
//	realm := proxykit.NewRealm("EXAMPLE.ORG")
//	alice, _ := realm.NewIdentity("alice")
//	fileServer, _ := realm.NewEndServer("file/srv1")
//	fileServer.SetACL("/etc/motd", proxykit.NewACL(
//		proxykit.ACLEntry(alice.ID, "read", "write")))
//
//	// Alice mints a read-only capability and hands it to anyone.
//	cap, _ := realm.GrantCapability(alice, time.Hour,
//		proxykit.Authorized{Entries: []proxykit.AuthorizedEntry{
//			{Object: "/etc/motd", Ops: []string{"read"}},
//		}})
//
//	// The holder presents it with proof of possession.
//	ch, _ := fileServer.Challenge()
//	pres, _ := cap.Present(ch, fileServer.ID)
//	dec, err := fileServer.Authorize(&proxykit.Request{
//		Object: "/etc/motd", Op: "read",
//		Proxies:   []*proxykit.Presentation{pres},
//		Challenge: ch,
//	})
//
// See examples/ for complete programs.
//
// # Observability
//
// The cmd/ daemons accept -metrics-addr to serve Prometheus metrics,
// recent RPC trace spans, and net/http/pprof on a side HTTP listener;
// the instrumentation (internal/obs) is standard-library only. The
// metric catalogue and operator guide live in OBSERVABILITY.md.
package proxykit
