package proxykit

import (
	"proxykit/internal/accounting"
	"proxykit/internal/acl"
	"proxykit/internal/audit"
	"proxykit/internal/endserver"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/restrict"
)

// Naming types (see internal/principal).
type (
	// Principal identifies a user, host, or service: "name@REALM".
	Principal = principal.ID
	// Global names an object on a maintaining server: "name%server@R".
	Global = principal.Global
	// Compound requires the concurrence of several principals (§3.5).
	Compound = principal.Compound
)

// Naming constructors.
var (
	// NewPrincipal builds a Principal from name and realm.
	NewPrincipal = principal.New
	// ParsePrincipal parses "name@REALM".
	ParsePrincipal = principal.Parse
	// NewGlobalName composes a global name from a server and local name.
	NewGlobalName = principal.NewGlobal
	// ParseGlobalName parses "local%server@REALM".
	ParseGlobalName = principal.ParseGlobal
	// NewCompound builds a canonical compound principal.
	NewCompound = principal.NewCompound
)

// Restriction types (§7 of the paper; see internal/restrict).
type (
	// Restriction is one typed condition on a proxy's use.
	Restriction = restrict.Restriction
	// Restrictions is a conjunctive set of restrictions.
	Restrictions = restrict.Set
	// Grantee restricts use to named principals (§7.1).
	Grantee = restrict.Grantee
	// ForUseByGroup restricts use to group members (§7.2).
	ForUseByGroup = restrict.ForUseByGroup
	// IssuedFor restricts accepting servers (§7.3).
	IssuedFor = restrict.IssuedFor
	// Quota limits resource consumption (§7.4).
	Quota = restrict.Quota
	// Authorized enumerates permitted objects and operations (§7.5).
	Authorized = restrict.Authorized
	// AuthorizedEntry is one (object, operations) pair.
	AuthorizedEntry = restrict.AuthorizedEntry
	// GroupMembership limits assertable groups (§7.6).
	GroupMembership = restrict.GroupMembership
	// AcceptOnce makes a proxy single-use (§7.7).
	AcceptOnce = restrict.AcceptOnce
	// Limit scopes embedded restrictions to named servers (§7.8).
	Limit = restrict.Limit
	// DepositTo directs check proceeds (§4).
	DepositTo = restrict.DepositTo
	// EvalContext describes a request during restriction evaluation.
	EvalContext = restrict.Context
)

// Proxy types (§2; see internal/proxy).
type (
	// Proxy couples a certificate chain with its secret proxy key.
	Proxy = proxy.Proxy
	// Certificate is one signed link of a chain.
	Certificate = proxy.Certificate
	// Presentation is what a grantee sends to an end-server.
	Presentation = proxy.Presentation
	// Verified summarizes a validated chain.
	Verified = proxy.Verified
	// VerifyEnv is an end-server's verification environment.
	VerifyEnv = proxy.VerifyEnv
	// GrantOptions parameterize proxy creation.
	GrantOptions = proxy.GrantParams
	// CascadeOptions parameterize chain extension (§3.4).
	CascadeOptions = proxy.CascadeParams
)

// Proxy modes.
const (
	// ModeConventional uses shared-key cryptography (§6.2).
	ModeConventional = proxy.ModeConventional
	// ModePublicKey uses public-key cryptography (§6.1).
	ModePublicKey = proxy.ModePublicKey
)

// Grant creates a restricted proxy; see proxy.Grant.
var Grant = proxy.Grant

// ACL types (§3.5; see internal/acl).
type (
	// ACL is an ordered access-control list.
	ACL = acl.ACL
	// ACLEntryT is one ACL line.
	ACLEntryT = acl.Entry
	// ACLSubject is an entry's subject.
	ACLSubject = acl.Subject
	// ACLQuery is one authorization question.
	ACLQuery = acl.Query
)

// ACL constructors.
var (
	// NewACL builds an ACL from entries.
	NewACL = acl.New
	// ACLEntry builds a single-principal entry.
	ACLEntry = acl.PrincipalEntry
	// ACLGroupEntry builds a single-group entry.
	ACLGroupEntry = acl.GroupEntry
)

// End-server types (see internal/endserver).
type (
	// EndServer authorizes requests against ACLs and proxies.
	EndServer = endserver.Server
	// Request is one authorization question to an end-server.
	Request = endserver.Request
	// Decision reports how a request was authorized.
	Decision = endserver.Decision
)

// Accounting types (§4; see internal/accounting).
type (
	// AccountingServer maintains accounts and clears checks.
	AccountingServer = accounting.Server
	// Check is a numbered delegate proxy authorizing a transfer.
	Check = accounting.Check
	// CheckParams describe a check to write.
	CheckParams = accounting.WriteCheckParams
	// CertifiedCheck couples a check with its bank certification.
	CertifiedCheck = accounting.CertifiedCheck
	// Receipt reports a deposit's outcome.
	Receipt = accounting.Receipt
)

// WriteCheck creates and signs a check; see accounting.WriteCheck.
var WriteCheck = accounting.WriteCheck

// VerifyCertification lets an end-server validate a bank's certified-
// check proxy; see accounting.VerifyCertification.
var VerifyCertification = accounting.VerifyCertification

// Audit types (§3.4, §5; see internal/audit).
type (
	// AuditLog is a bounded in-memory decision log.
	AuditLog = audit.Log
	// AuditRecord is one logged decision.
	AuditRecord = audit.Record
	// AuditJournal is the append-only hash-chained record stream
	// behind AuditLog: each record's hash commits to its predecessor,
	// so truncation or tampering is detectable by re-walking the chain.
	AuditJournal = audit.Journal
	// AuditJournalOptions configure a journal: tail size, JSONL file
	// sink, and an optional slog mirror.
	AuditJournalOptions = audit.Options
)

// NewAuditLog builds a bounded audit log.
var NewAuditLog = audit.NewLog

// NewAuditJournal opens (or creates) an audit journal; an existing
// file is replayed and chain-verified first.
var NewAuditJournal = audit.New

// VerifyAuditChain re-checks the hash chain of a record sequence.
var VerifyAuditChain = audit.VerifyChain

// VerifyAuditFile re-walks a journal file's hash chain, returning the
// number of verified records.
var VerifyAuditFile = audit.VerifyFile
