package proxykit_test

import (
	"fmt"
	"time"

	"proxykit"
)

// ExampleRealm shows the capability flow of §3.1: the ACL names only
// the grantor, and a bearer proxy conveys a narrowed slice of her
// rights to whoever holds it.
func ExampleRealm() {
	realm := proxykit.NewRealm("EXAMPLE.ORG")
	alice, _ := realm.NewIdentity("alice")
	fileServer, _ := realm.NewEndServer("file/srv1")
	fileServer.SetACL("/etc/motd", proxykit.NewACL(
		proxykit.ACLEntry(alice.ID, "read", "write")))

	capability, _ := realm.GrantCapability(alice, time.Hour,
		proxykit.Authorized{Entries: []proxykit.AuthorizedEntry{
			{Object: "/etc/motd", Ops: []string{"read"}},
		}})

	ch, _ := fileServer.Challenge()
	pres, _ := capability.Present(ch, fileServer.ID)
	dec, err := fileServer.Authorize(&proxykit.Request{
		Object: "/etc/motd", Op: "read",
		Proxies:   []*proxykit.Presentation{pres},
		Challenge: ch,
	})
	if err != nil {
		fmt.Println("denied:", err)
		return
	}
	fmt.Printf("granted via %s (proxy=%v)\n", dec.Via.Name, dec.ViaProxy)
	// Output: granted via alice (proxy=true)
}

// ExampleRealm_delegate shows a delegate proxy (§7.1): only the named
// grantee, authenticating as itself, can exercise it.
func ExampleRealm_delegate() {
	realm := proxykit.NewRealm("EXAMPLE.ORG")
	alice, _ := realm.NewIdentity("alice")
	bob, _ := realm.NewIdentity("bob")
	srv, _ := realm.NewEndServer("srv")
	srv.SetACL("/doc", proxykit.NewACL(proxykit.ACLEntry(alice.ID, "read")))

	del, _ := realm.GrantDelegate(alice, []proxykit.Principal{bob.ID}, time.Hour)

	// Bob presents the certificates and his own authenticated identity.
	dec, err := srv.Authorize(&proxykit.Request{
		Object: "/doc", Op: "read",
		Identities: []proxykit.Principal{bob.ID},
		Proxies:    []*proxykit.Presentation{del.PresentDelegate()},
	})
	if err != nil {
		fmt.Println("denied:", err)
		return
	}
	fmt.Printf("bob acted with %s's rights\n", dec.Via.Name)

	// Carol, holding the same certificates, is refused.
	carol, _ := realm.NewIdentity("carol")
	_, err = srv.Authorize(&proxykit.Request{
		Object: "/doc", Op: "read",
		Identities: []proxykit.Principal{carol.ID},
		Proxies:    []*proxykit.Presentation{del.PresentDelegate()},
	})
	fmt.Println("carol denied:", err != nil)
	// Output:
	// bob acted with alice's rights
	// carol denied: true
}

// ExampleWriteCheck shows the §4 accounting flow on one bank.
func ExampleWriteCheck() {
	realm := proxykit.NewRealm("BANK.ORG")
	carol, _ := realm.NewIdentity("carol")
	dave, _ := realm.NewIdentity("dave")
	bank, _ := realm.NewAccountingServer("bank")
	_ = bank.CreateAccount("carol", carol.ID)
	_ = bank.CreateAccount("dave", dave.ID)
	_ = bank.Mint("carol", "dollars", 100)

	check, _ := proxykit.WriteCheck(proxykit.CheckParams{
		Payor: carol, Bank: bank.ID, Account: "carol",
		Payee: dave.ID, Currency: "dollars", Amount: 40,
		Lifetime: time.Hour,
	})
	receipt, err := bank.DepositCheck(check, []proxykit.Principal{dave.ID}, "dave")
	if err != nil {
		fmt.Println("rejected:", err)
		return
	}
	fmt.Printf("cleared $%d through %d bank(s)\n", receipt.Amount, receipt.Hops)

	// The same check cannot be deposited twice.
	_, err = bank.DepositCheck(check, []proxykit.Principal{dave.ID}, "dave")
	fmt.Println("duplicate rejected:", err != nil)
	// Output:
	// cleared $40 through 1 bank(s)
	// duplicate rejected: true
}
