// Electronic checks: the §4 / Fig. 5 accounting flow across two
// accounting servers, plus certified checks and duplicate rejection.
//
// Carol (client C) banks at bank2 ($2); the compute service (server S)
// banks at bank1 ($1). Carol pays the service by check; the service
// endorses the check to its bank, which endorses it onward to carol's
// bank for clearing — "subsequent accounting servers repeat the process
// until the payor's accounting server is reached."
//
//	go run ./examples/electronic-checks
package main

import (
	"fmt"
	"log"
	"time"

	"proxykit"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	realm := proxykit.NewRealm("COMMERCE.ORG")
	carol, err := realm.NewIdentity("carol")
	if err != nil {
		return err
	}
	service, err := realm.NewIdentity("compute-service")
	if err != nil {
		return err
	}
	bank1, err := realm.NewAccountingServer("bank1") // service's bank ($1)
	if err != nil {
		return err
	}
	bank2, err := realm.NewAccountingServer("bank2") // carol's bank ($2)
	if err != nil {
		return err
	}
	bank1.AddPeer(bank2)
	bank2.AddPeer(bank1)

	if err := bank2.CreateAccount("carol", carol.ID); err != nil {
		return err
	}
	if err := bank2.Mint("carol", "dollars", 1000); err != nil {
		return err
	}
	if err := bank1.CreateAccount("service", service.ID); err != nil {
		return err
	}
	fmt.Println("carol opens an account at bank2 with $1000")
	fmt.Println("the compute service banks at bank1")
	fmt.Println()

	// Carol writes a check to the service: a numbered delegate proxy.
	check, err := proxykit.WriteCheck(proxykit.CheckParams{
		Payor:    carol,
		Bank:     bank2.ID,
		Account:  "carol",
		Payee:    service.ID,
		Currency: "dollars",
		Amount:   250,
		Lifetime: 30 * 24 * time.Hour,
		Clock:    realm.Clock,
	})
	if err != nil {
		return err
	}
	fmt.Printf("carol writes check #%s for $%d to %s\n", check.Number[:8], check.Amount, check.Payee)
	fmt.Printf("  restrictions: %s\n\n", check.Proxy.Restrictions())

	// The service endorses it for deposit only to its account at bank1
	// (a restricted endorsement is a delegate proxy) and deposits it.
	endorsed, err := check.Endorse(service, bank1.ID, bank1.ID, bank1.Global("service"), true, realm.Clock)
	if err != nil {
		return err
	}
	receipt, err := bank1.DepositCheck(endorsed, []proxykit.Principal{service.ID}, "service")
	if err != nil {
		return err
	}
	fmt.Printf("service deposits at bank1: cleared through %d banks\n", receipt.Hops)
	printBalances(bank1, bank2, carol, service)

	// A duplicate deposit of the same check is rejected (§7.7:
	// accept-once, "a real life example of such an identifier is a
	// check number").
	if _, err := bank1.DepositCheck(endorsed, []proxykit.Principal{service.ID}, "service"); err != nil {
		fmt.Printf("second deposit of the same check: REJECTED (%v)\n\n", err)
	}

	// Certified check: the bank holds the funds and certifies them, so
	// the service can verify payment is guaranteed before doing work.
	big, err := proxykit.WriteCheck(proxykit.CheckParams{
		Payor: carol, Bank: bank2.ID, Account: "carol",
		Payee: service.ID, Currency: "dollars", Amount: 500,
		Lifetime: 24 * time.Hour, Clock: realm.Clock,
	})
	if err != nil {
		return err
	}
	certified, err := bank2.Certify("carol", []proxykit.Principal{carol.ID}, big)
	if err != nil {
		return err
	}
	fmt.Printf("bank2 certifies check #%s: $500 held\n", big.Number[:8])
	env := realm.VerifyEnvFor(service.ID)
	if err := proxykit.VerifyCertification(certified, env, service.ID); err != nil {
		return err
	}
	fmt.Println("service verified the bank's certification before doing the work")

	endorsedBig, err := certified.Check.Endorse(service, bank1.ID, bank1.ID, bank1.Global("service"), true, realm.Clock)
	if err != nil {
		return err
	}
	if _, err := bank1.DepositCheck(endorsedBig, []proxykit.Principal{service.ID}, "service"); err != nil {
		return err
	}
	fmt.Println("certified check cleared from the hold")
	printBalances(bank1, bank2, carol, service)

	// Carol's bank statement shows the whole story.
	fmt.Println("carol's statement at bank2:")
	stmt, err := bank2.Statement("carol", []proxykit.Principal{carol.ID})
	if err != nil {
		return err
	}
	for _, tx := range stmt {
		fmt.Println(" ", tx)
	}
	return nil
}

func printBalances(bank1, bank2 *proxykit.AccountingServer, carol, service *proxykit.Identity) {
	cb, _ := bank2.Balance("carol", "dollars", []proxykit.Principal{carol.ID})
	sb, _ := bank1.Balance("service", "dollars", []proxykit.Principal{service.ID})
	fmt.Printf("  balances: carol $%d at bank2, service $%d at bank1\n\n", cb, sb)
}
