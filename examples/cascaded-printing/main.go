// Cascaded printing: §3.4 delegation through a pipeline of servers that
// do not completely trust one another.
//
// Alice submits a print job. The print spooler must read her file from
// the file server — but only that file, only to print it, and only this
// once. Alice grants the spooler a delegate proxy restricted to her
// file; the spooler cascades it to the print daemon with a further
// page-quota restriction. The file server verifies the whole chain
// offline, and the delegate cascade leaves an audit trail identifying
// every intermediate.
//
//	go run ./examples/cascaded-printing
package main

import (
	"fmt"
	"log"
	"time"

	"proxykit"
	"proxykit/internal/proxy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	realm := proxykit.NewRealm("PRINT.EXAMPLE.ORG")
	alice, err := realm.NewIdentity("alice")
	if err != nil {
		return err
	}
	spooler, err := realm.NewIdentity("spooler")
	if err != nil {
		return err
	}
	printd, err := realm.NewIdentity("printd")
	if err != nil {
		return err
	}
	fileServer, err := realm.NewEndServer("file/srv1")
	if err != nil {
		return err
	}
	fileServer.SetACL("/home/alice/thesis.ps", proxykit.NewACL(
		proxykit.ACLEntry(alice.ID, "read", "write", "delete")))

	// The end-server seals every decision — grants and denials — into
	// a hash-chained audit journal.
	audit := proxykit.NewAuditLog(128)
	fileServer.SetAuditLog(audit)

	// Step 1: alice grants the spooler a delegate proxy: read her
	// thesis, nothing else, usable only by the spooler.
	toSpooler, err := realm.GrantDelegate(alice,
		[]proxykit.Principal{spooler.ID}, 15*time.Minute,
		proxykit.Authorized{Entries: []proxykit.AuthorizedEntry{
			{Object: "/home/alice/thesis.ps", Ops: []string{"read"}},
		}})
	if err != nil {
		return err
	}
	fmt.Printf("alice -> spooler: %s\n", toSpooler.Restrictions())

	// Step 2: the spooler cascades to the print daemon, adding a page
	// quota. It signs with its own identity (a delegate cascade), so
	// the chain records that the spooler was in the path.
	toPrintd, err := toSpooler.CascadeDelegate(spooler.ID, spooler.Signer(), proxykit.CascadeOptions{
		Added: proxykit.Restrictions{
			proxykit.Grantee{Principals: []proxykit.Principal{printd.ID}},
			proxykit.Quota{Currency: "pages", Limit: 200},
		},
		Lifetime: 10 * time.Minute,
		Mode:     proxykit.ModePublicKey,
		Clock:    realm.Clock,
	})
	if err != nil {
		return err
	}
	fmt.Printf("spooler -> printd: added %s\n\n", toPrintd.Final().Restrictions)

	// Step 3: the print daemon reads the file, authenticating as itself
	// and presenting the chain. No authentication-server round trip is
	// needed — the chain verifies offline (contrast with Sollins 1988).
	present := toPrintd.PresentDelegate()
	decision, err := fileServer.Authorize(&proxykit.Request{
		Object:     "/home/alice/thesis.ps",
		Op:         "read",
		Identities: []proxykit.Principal{printd.ID},
		Proxies:    []*proxy.Presentation{present},
		Amounts:    map[string]int64{"pages": 180},
	})
	if err != nil {
		return err
	}
	fmt.Printf("printd read thesis.ps: GRANTED with rights of %s\n", decision.Via)
	fmt.Printf("audit trail through: %v\n\n", decision.Trail)

	// The quota holds: a 500-page job is refused.
	_, err = fileServer.Authorize(&proxykit.Request{
		Object:     "/home/alice/thesis.ps",
		Op:         "read",
		Identities: []proxykit.Principal{printd.ID},
		Proxies:    []*proxy.Presentation{toPrintd.PresentDelegate()},
		Amounts:    map[string]int64{"pages": 500},
	})
	fmt.Printf("500-page job: DENIED (%v)\n", err)

	// And the daemon cannot touch anything else of alice's.
	_, err = fileServer.Authorize(&proxykit.Request{
		Object:     "/home/alice/diary.txt",
		Op:         "read",
		Identities: []proxykit.Principal{printd.ID},
		Proxies:    []*proxy.Presentation{toPrintd.PresentDelegate()},
	})
	fmt.Printf("read diary.txt:  DENIED (%v)\n\n", err)

	// Every decision above — the grant and both denials — is in the
	// journal, each record hash-chained to its predecessor.
	for _, rec := range audit.Records() {
		fmt.Printf("audit #%d %s..%s: %s\n", rec.Seq, rec.Prev[:min(8, len(rec.Prev))], rec.Hash[:8], rec)
	}
	if err := proxykit.VerifyAuditChain(audit.Records()); err != nil {
		return fmt.Errorf("audit chain broken: %w", err)
	}
	fmt.Println("audit chain verified: each hash commits to the whole prefix")
	return nil
}
