// Cross-realm delegation: restricted proxies crossing administrative
// domains.
//
// The paper closes by arguing its mechanisms "scale"; this example
// exercises the inter-realm extension: two federated KDCs, a client in
// ALPHA.ORG using a service in BETA.ORG, with a restriction placed at
// login following the credentials across the realm boundary — and a
// TGS proxy letting a delegate in ALPHA act for the client in BETA.
//
//	go run ./examples/cross-realm
package main

import (
	"fmt"
	"log"
	"time"

	"proxykit"
	"proxykit/internal/kcrypto"
	"proxykit/internal/kerberos"
	"proxykit/internal/principal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const realmA, realmB = "ALPHA.ORG", "BETA.ORG"

	kdcA, err := kerberos.NewKDC(realmA, nil)
	if err != nil {
		return err
	}
	kdcB, err := kerberos.NewKDC(realmB, nil)
	if err != nil {
		return err
	}
	if err := kerberos.Federate(kdcA, kdcB); err != nil {
		return err
	}
	fmt.Printf("federated %s <-> %s with fresh inter-realm keys\n\n", realmA, realmB)

	// Provision alice in ALPHA and a compute service in BETA.
	aliceID := principal.New("alice", realmA)
	aliceKey, err := kdcA.RegisterWithPassword(aliceID, "pw")
	if err != nil {
		return err
	}
	computeID := principal.New("compute/gpu1", realmB)
	computeKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		return err
	}
	if err := kdcB.Register(computeID, computeKey); err != nil {
		return err
	}

	// Alice logs in at home with a spending cap sealed into her
	// credentials (§6.3: initial authentication as a proxy grant).
	alice := kerberos.NewClient(aliceID, aliceKey, nil)
	tgt, err := alice.Login(kdcA, kdcA.TGS(), 4*time.Hour, proxykit.Restrictions{
		proxykit.Quota{Currency: "gpu-hours", Limit: 8},
	})
	if err != nil {
		return err
	}
	fmt.Printf("alice@%s logged in; credentials carry: %s\n", realmA, tgt.AuthzData)

	// She crosses into BETA: local TGS issues a cross-realm TGT, the
	// remote TGS turns it into a service ticket. The quota follows.
	creds, err := alice.CrossRealmTicket(kdcA, kdcB, tgt, realmB, computeID, time.Hour, nil)
	if err != nil {
		return err
	}
	fmt.Printf("cross-realm ticket for %s, restrictions: %s\n\n", creds.Ticket.Server, creds.AuthzData)

	compute := kerberos.NewServer(computeID, computeKey, nil)
	apReq, err := alice.MakeAPRequest(creds, nil)
	if err != nil {
		return err
	}
	ctx, err := compute.VerifyAPRequest(apReq, nil)
	if err != nil {
		return err
	}
	check := func(hours int64) string {
		err := ctx.Restrictions.Check(&proxykit.EvalContext{
			Server:  computeID,
			Amounts: map[string]int64{"gpu-hours": hours},
		})
		if err == nil {
			return "GRANTED"
		}
		return "DENIED (" + err.Error() + ")"
	}
	fmt.Printf("compute@%s authenticated alice@%s\n", realmB, ctx.Client.Realm)
	fmt.Printf("  request 6 gpu-hours:  %s\n", check(6))
	fmt.Printf("  request 20 gpu-hours: %s\n\n", check(20))

	// Delegation across the boundary: alice grants bob (also ALPHA) a
	// TGS proxy narrowed to 1 gpu-hour; bob redeems it for his own
	// cross-realm path.
	bobID := principal.New("bob", realmA)
	px, err := kerberos.MakeProxy(tgt, proxykit.Restrictions{
		proxykit.Quota{Currency: "gpu-hours", Limit: 1},
	}, nil)
	if err != nil {
		return err
	}
	// Bob first converts the proxy into a cross-realm TGT via ALPHA's
	// TGS, then asks BETA's TGS for the service ticket.
	crossName := principal.New("krbtgt/"+realmB, realmA)
	crossCreds, err := kerberos.RequestTicketWithProxy(kdcA, px, bobID, crossName, time.Hour, nil)
	if err != nil {
		return err
	}
	bobView := kerberos.NewClient(crossCreds.Client, nil, nil)
	svcCreds, err := bobView.RequestTicket(kdcB, crossCreds, computeID, time.Hour, nil)
	if err != nil {
		return err
	}
	fmt.Printf("bob redeemed alice's proxy across realms: ticket names %s\n", svcCreds.Client)
	fmt.Printf("  accumulated restrictions: %s\n", svcCreds.AuthzData)

	apReq2, err := bobView.MakeAPRequest(svcCreds, nil)
	if err != nil {
		return err
	}
	ctx2, err := compute.VerifyAPRequest(apReq2, nil)
	if err != nil {
		return err
	}
	err = ctx2.Restrictions.Check(&proxykit.EvalContext{
		Server:  computeID,
		Amounts: map[string]int64{"gpu-hours": 2},
	})
	fmt.Printf("  bob requests 2 gpu-hours: DENIED as expected (%v)\n", err)
	return nil
}
