// Quickstart: grant a read-only capability for a file and exercise it.
//
// This is the §3.1 capability flow: the file server's ACL names only
// alice; alice mints a bearer proxy restricted to reading one file and
// hands it to bob, who proves possession of the proxy key and reads the
// file with alice's rights.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"proxykit"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	realm := proxykit.NewRealm("EXAMPLE.ORG")

	alice, err := realm.NewIdentity("alice")
	if err != nil {
		return err
	}
	fileServer, err := realm.NewEndServer("file/srv1")
	if err != nil {
		return err
	}

	// Only alice appears in the ACL; everyone else must come through a
	// proxy she grants.
	fileServer.SetACL("/etc/motd", proxykit.NewACL(
		proxykit.ACLEntry(alice.ID, "read", "write")))
	fmt.Printf("ACL for /etc/motd:\n  %s\n\n", proxykit.ACLEntry(alice.ID, "read", "write"))

	// Alice mints a read-only capability valid for an hour.
	capability, err := realm.GrantCapability(alice, time.Hour,
		proxykit.Authorized{Entries: []proxykit.AuthorizedEntry{
			{Object: "/etc/motd", Ops: []string{"read"}},
		}})
	if err != nil {
		return err
	}
	fmt.Printf("alice granted a capability: %s\n", capability.Restrictions())
	fmt.Printf("  grantor: %s, expires: %s\n\n", capability.Grantor(), capability.Expires().Format(time.RFC3339))

	// Bob (or anyone holding the proxy) presents it: the server issues
	// a challenge and bob proves possession of the proxy key, so a
	// network eavesdropper who saw the certificate cannot replay it.
	challenge, err := fileServer.Challenge()
	if err != nil {
		return err
	}
	presentation, err := capability.Present(challenge, fileServer.ID)
	if err != nil {
		return err
	}
	decision, err := fileServer.Authorize(&proxykit.Request{
		Object:    "/etc/motd",
		Op:        "read",
		Proxies:   []*proxykit.Presentation{presentation},
		Challenge: challenge,
	})
	if err != nil {
		return err
	}
	fmt.Printf("read /etc/motd: GRANTED via %s (proxy=%v)\n", decision.Via, decision.ViaProxy)

	// The same capability cannot write: the restriction is enforced.
	challenge2, _ := fileServer.Challenge()
	presentation2, _ := capability.Present(challenge2, fileServer.ID)
	_, err = fileServer.Authorize(&proxykit.Request{
		Object:    "/etc/motd",
		Op:        "write",
		Proxies:   []*proxykit.Presentation{presentation2},
		Challenge: challenge2,
	})
	fmt.Printf("write /etc/motd: DENIED (%v)\n", err)
	return nil
}
