// Group and authorization servers over the network: the composed flow
// of §3.2 + §3.3, with message counting.
//
// The file server's ACL delegates to an authorization server; the
// authorization server's database keys on a group maintained by a group
// server. Bob fetches a group proxy, presents it to the authorization
// server, and receives an authorization proxy that the file server
// checks offline. The in-memory network reports exactly how many round
// trips the whole flow cost.
//
//	go run ./examples/group-authz
package main

import (
	"fmt"
	"log"
	"time"

	"proxykit"
	"proxykit/internal/acl"
	"proxykit/internal/authz"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	realm := proxykit.NewRealm("CAMPUS.ORG")
	bob, err := realm.NewIdentity("bob")
	if err != nil {
		return err
	}

	groupSrv, err := realm.NewGroupServer("groups")
	if err != nil {
		return err
	}
	groupSrv.AddMember("staff", bob.ID)
	staff := groupSrv.Global("staff")

	authzSrv, err := realm.NewAuthzServer("authz")
	if err != nil {
		return err
	}
	fileSrv, err := realm.NewEndServer("file/srv1")
	if err != nil {
		return err
	}

	// The authorization database: staff may read the shared document on
	// the file server, up to 10 MB per request.
	authzSrv.AddRule(authz.Rule{
		EndServer:    fileSrv.ID,
		Object:       "/shared/handbook.pdf",
		Subject:      acl.Subject{Groups: []principal.Global{staff}},
		Ops:          []string{"read"},
		Restrictions: proxykit.Restrictions{proxykit.Quota{Currency: "mbytes", Limit: 10}},
	})
	// The file server delegates authorization for this object entirely
	// to the authorization server (§3.5).
	fileSrv.SetACL("/shared/handbook.pdf", proxykit.NewACL(
		proxykit.ACLEntry(authzSrv.ID, "read")))

	// Put everything on the wire and meter it.
	net := transport.NewNetwork()
	resolve := realm.Directory().Resolver()
	net.Register("groups", svc.NewGroupService(groupSrv, resolve, realm.Clock).Mux())
	net.Register("authz", svc.NewAuthzService(authzSrv, resolve, realm.Clock).Mux())
	net.Register("file", svc.NewEndService(fileSrv, resolve, realm.Clock).Mux())

	// 0. Message 0 of Fig. 3: bob asks the file server what credentials
	//    the document needs, learning that the authorization server
	//    holds the keys to it.
	ec0 := svc.NewEndClient(net.MustDial("file"), bob, realm.Clock)
	hints, err := ec0.Hints("/shared/handbook.pdf")
	if err != nil {
		return err
	}
	fmt.Printf("credential hint from the file server: %v\n\n", hints)

	// 1. Bob obtains a delegate group proxy (1 round trip).
	gc := svc.NewGroupClient(net.MustDial("groups"), bob, realm.Clock)
	groupProxy, err := gc.Grant(svc.GroupGrantParams{
		Groups: []string{"staff"}, Lifetime: time.Hour, Delegate: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("group proxy: %s\n", groupProxy.Restrictions())

	// 2. Bob trades it for an authorization proxy (1 round trip). The
	//    group proxy's restrictions propagate (§7.9).
	ac := svc.NewAuthzClient(net.MustDial("authz"), bob, realm.Clock)
	authzProxy, err := ac.Grant(svc.GrantParams{
		EndServer:    fileSrv.ID,
		Lifetime:     time.Hour,
		GroupProxies: []*proxy.Presentation{groupProxy.PresentDelegate()},
	})
	if err != nil {
		return err
	}
	fmt.Printf("authorization proxy: %s\n\n", authzProxy.Restrictions())

	// 3. Bob reads the document (challenge + request: 2 round trips).
	ec := ec0
	ch, err := ec.Challenge()
	if err != nil {
		return err
	}
	pres, err := authzProxy.Present(ch, fileSrv.ID)
	if err != nil {
		return err
	}
	dec, err := ec.Request(svc.RequestParams{
		Object: "/shared/handbook.pdf", Op: "read",
		Challenge: ch,
		Proxies:   []*proxy.Presentation{pres},
		Amounts:   map[string]int64{"mbytes": 8},
	})
	if err != nil {
		return err
	}
	fmt.Printf("read handbook.pdf: GRANTED via %s\n", dec.Via)

	msgs, rts, bytes := net.Stats().Snapshot()
	fmt.Printf("\nnetwork cost of the whole flow: %d round trips, %d messages, %d payload bytes\n", rts, msgs, bytes)
	fmt.Println("subsequent reads need only the challenge+request round trips —")
	fmt.Println("the file server never contacts the group or authorization server.")
	return nil
}
