// Kerberos integration: restricted proxies carried on Kerberos V5-style
// credentials (§6.2 / §6.3).
//
// Alice logs in, takes a ticket-granting ticket, and grants bob a proxy
// for the ticket-granting service itself, restricted to reading one
// file. Bob uses the proxy to obtain service tickets "with identical
// restrictions for additional end-servers as needed" — without ever
// learning alice's password or session key.
//
//	go run ./examples/kerberos-login
package main

import (
	"fmt"
	"log"
	"time"

	"proxykit"
	"proxykit/internal/kcrypto"
	"proxykit/internal/kerberos"
	"proxykit/internal/principal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const realmName = "ATHENA.EXAMPLE.ORG"
	kdc, err := kerberos.NewKDC(realmName, nil)
	if err != nil {
		return err
	}

	// Provision principals.
	aliceID := principal.New("alice", realmName)
	bobID := principal.New("bob", realmName)
	fileID := principal.New("file/srv1", realmName)
	aliceKey, err := kdc.RegisterWithPassword(aliceID, "correct horse battery staple")
	if err != nil {
		return err
	}
	fileKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		return err
	}
	if err := kdc.Register(fileID, fileKey); err != nil {
		return err
	}
	fmt.Printf("KDC for %s: provisioned alice, file/srv1\n\n", realmName)

	// Alice logs in (AS exchange with encrypted-timestamp preauth).
	alice := kerberos.NewClient(aliceID, aliceKey, nil)
	tgt, err := alice.Login(kdc, kdc.TGS(), 8*time.Hour, nil)
	if err != nil {
		return err
	}
	fmt.Printf("alice logged in: TGT for %s, expires %s\n",
		tgt.Ticket.Server, tgt.Expires.Format(time.Kitchen))

	// Alice grants bob a proxy for the ticket-granting service,
	// restricted to reading her paper: the ticket plus an authenticator
	// carrying a fresh proxy key in its subkey field and the
	// restriction in its authorization-data (§6.2).
	restriction := proxykit.Restrictions{
		proxykit.Authorized{Entries: []proxykit.AuthorizedEntry{
			{Object: "/home/alice/paper.tex", Ops: []string{"read"}},
		}},
	}
	tgsProxy, err := kerberos.MakeProxy(tgt, restriction, nil)
	if err != nil {
		return err
	}
	fmt.Printf("alice granted bob a TGS proxy restricted to: %s\n\n", restriction)

	// Bob obtains a ticket for the file server through the proxy. The
	// ticket names alice — bob acts with her (restricted) rights.
	creds, err := kerberos.RequestTicketWithProxy(kdc, tgsProxy, bobID, fileID, time.Hour, nil)
	if err != nil {
		return err
	}
	fmt.Printf("bob obtained a ticket for %s naming %s\n", creds.Ticket.Server, creds.Client)

	// Bob presents the ticket to the file server.
	fileServer := kerberos.NewServer(fileID, fileKey, nil)
	bobView := kerberos.NewClient(creds.Client, nil, nil)
	apReq, err := bobView.MakeAPRequest(creds, nil)
	if err != nil {
		return err
	}
	ctx, err := fileServer.VerifyAPRequest(apReq, nil)
	if err != nil {
		return err
	}
	fmt.Printf("file server authenticated the request: client=%s restrictions=%s\n\n",
		ctx.Client, ctx.Restrictions)

	// The restriction followed the proxy into the ticket: reading the
	// paper is allowed, anything else is not.
	allowed := ctx.Restrictions.Check(&proxykit.EvalContext{
		Server: fileID, Object: "/home/alice/paper.tex", Operation: "read",
	})
	denied := ctx.Restrictions.Check(&proxykit.EvalContext{
		Server: fileID, Object: "/home/alice/diary.txt", Operation: "read",
	})
	fmt.Printf("read paper.tex: %v\n", errString(allowed))
	fmt.Printf("read diary.txt: %v\n", errString(denied))
	return nil
}

func errString(err error) string {
	if err == nil {
		return "GRANTED"
	}
	return "DENIED (" + err.Error() + ")"
}
