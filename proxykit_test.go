package proxykit_test

import (
	"testing"
	"time"

	"proxykit"
	"proxykit/internal/clock"
	"proxykit/internal/group"
)

func TestRealmQuickstartFlow(t *testing.T) {
	realm := proxykit.NewRealm("EXAMPLE.ORG")
	realm.Clock = clock.NewFake(time.Unix(21_000_000, 0))

	alice, err := realm.NewIdentity("alice")
	if err != nil {
		t.Fatal(err)
	}
	fileServer, err := realm.NewEndServer("file/srv1")
	if err != nil {
		t.Fatal(err)
	}
	fileServer.SetACL("/etc/motd", proxykit.NewACL(
		proxykit.ACLEntry(alice.ID, "read", "write")))

	capability, err := realm.GrantCapability(alice, time.Hour,
		proxykit.Authorized{Entries: []proxykit.AuthorizedEntry{
			{Object: "/etc/motd", Ops: []string{"read"}},
		}})
	if err != nil {
		t.Fatal(err)
	}

	ch, err := fileServer.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	pres, err := capability.Present(ch, fileServer.ID)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := fileServer.Authorize(&proxykit.Request{
		Object: "/etc/motd", Op: "read",
		Proxies:   []*proxykit.Presentation{pres},
		Challenge: ch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Via != alice.ID || !dec.ViaProxy {
		t.Fatalf("decision = %+v", dec)
	}

	// The capability cannot write.
	ch2, _ := fileServer.Challenge()
	pres2, _ := capability.Present(ch2, fileServer.ID)
	if _, err := fileServer.Authorize(&proxykit.Request{
		Object: "/etc/motd", Op: "write",
		Proxies:   []*proxykit.Presentation{pres2},
		Challenge: ch2,
	}); err == nil {
		t.Fatal("capability exceeded its restriction")
	}
}

func TestRealmDelegateFlow(t *testing.T) {
	realm := proxykit.NewRealm("EXAMPLE.ORG")
	realm.Clock = clock.NewFake(time.Unix(21_000_000, 0))
	alice, _ := realm.NewIdentity("alice")
	bobIdent, _ := realm.NewIdentity("bob")
	bob := bobIdent.ID
	srv, err := realm.NewEndServer("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetACL("/doc", proxykit.NewACL(proxykit.ACLEntry(alice.ID, "read")))

	del, err := realm.GrantDelegate(alice, []proxykit.Principal{bob}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := srv.Authorize(&proxykit.Request{
		Object: "/doc", Op: "read",
		Identities: []proxykit.Principal{bob},
		Proxies:    []*proxykit.Presentation{del.PresentDelegate()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Via != alice.ID {
		t.Fatalf("via = %v", dec.Via)
	}
}

func TestRealmAccounting(t *testing.T) {
	realm := proxykit.NewRealm("BANKS.ORG")
	realm.Clock = clock.NewFake(time.Unix(21_000_000, 0))
	carol, _ := realm.NewIdentity("carol")
	dave, _ := realm.NewIdentity("dave")
	bank, err := realm.NewAccountingServer("bank")
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.CreateAccount("carol", carol.ID); err != nil {
		t.Fatal(err)
	}
	if err := bank.CreateAccount("dave", dave.ID); err != nil {
		t.Fatal(err)
	}
	if err := bank.Mint("carol", "dollars", 100); err != nil {
		t.Fatal(err)
	}
	check, err := proxykit.WriteCheck(proxykit.CheckParams{
		Payor: carol, Bank: bank.ID, Account: "carol",
		Payee: dave.ID, Currency: "dollars", Amount: 40,
		Lifetime: time.Hour, Clock: realm.Clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bank.DepositCheck(check, []proxykit.Principal{dave.ID}, "dave"); err != nil {
		t.Fatal(err)
	}
	bal, err := bank.Balance("dave", "dollars", []proxykit.Principal{dave.ID})
	if err != nil {
		t.Fatal(err)
	}
	if bal != 40 {
		t.Fatalf("dave = %d", bal)
	}
}

func TestRealmDuplicateIdentityRejected(t *testing.T) {
	realm := proxykit.NewRealm("EXAMPLE.ORG")
	if _, err := realm.NewIdentity("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := realm.NewIdentity("alice"); err == nil {
		t.Fatal("duplicate identity accepted")
	}
	if _, ok := realm.Identity("alice"); !ok {
		t.Fatal("identity lookup failed")
	}
	if _, ok := realm.Identity("ghost"); ok {
		t.Fatal("phantom identity")
	}
}

func TestParseHelpers(t *testing.T) {
	p, err := proxykit.ParsePrincipal("alice@EXAMPLE.ORG")
	if err != nil {
		t.Fatal(err)
	}
	if p != proxykit.NewPrincipal("alice", "EXAMPLE.ORG") {
		t.Fatal("parse mismatch")
	}
	g, err := proxykit.ParseGlobalName("staff%groups@EXAMPLE.ORG")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "staff" {
		t.Fatalf("g = %v", g)
	}
}

func TestRealmServiceConstructors(t *testing.T) {
	realm := proxykit.NewRealm("SVC.ORG")
	realm.Clock = clock.NewFake(time.Unix(21_000_000, 0))
	bobIdent, err := realm.NewIdentity("bob")
	if err != nil {
		t.Fatal(err)
	}

	groups, err := realm.NewGroupServer("groups")
	if err != nil {
		t.Fatal(err)
	}
	groups.AddMember("staff", bobIdent.ID)

	authzSrv, err := realm.NewAuthzServer("authz")
	if err != nil {
		t.Fatal(err)
	}
	if authzSrv.ID != proxykit.NewPrincipal("authz", "SVC.ORG") {
		t.Fatalf("authz id = %v", authzSrv.ID)
	}

	// The realm directory resolves every created identity.
	if _, err := realm.Directory().Lookup(groups.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := realm.Directory().Lookup(authzSrv.ID); err != nil {
		t.Fatal(err)
	}

	// Duplicate server names are refused (identity collision).
	if _, err := realm.NewGroupServer("groups"); err == nil {
		t.Fatal("duplicate server identity accepted")
	}
	if _, err := realm.NewAuthzServer("authz"); err == nil {
		t.Fatal("duplicate authz identity accepted")
	}
	if _, err := realm.NewEndServer("authz"); err == nil {
		t.Fatal("end-server reused existing identity")
	}
	if _, err := realm.NewAccountingServer("authz"); err == nil {
		t.Fatal("accounting server reused existing identity")
	}

	// A group proxy from the realm-built group server verifies under a
	// realm-built env.
	gp, err := groups.Grant(&group.GrantRequest{
		Client: bobIdent.ID, Groups: []string{"staff"}, Lifetime: time.Hour, Delegate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := realm.VerifyEnvFor(proxykit.NewPrincipal("file", "SVC.ORG"))
	if _, err := env.VerifyChain(gp.Certs); err != nil {
		t.Fatal(err)
	}
}

func TestRealmHybridConventionalCapability(t *testing.T) {
	realm := proxykit.NewRealm("HYBRID.ORG")
	realm.Clock = clock.NewFake(time.Unix(21_000_000, 0))
	alice, _ := realm.NewIdentity("alice")
	srv, err := realm.NewEndServer("file/srv1")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetACL("/doc", proxykit.NewACL(proxykit.ACLEntry(alice.ID, "read")))

	// A conventional (HMAC) capability sealed to the server's published
	// encryption key — no pre-shared key between alice and the server.
	cap, err := realm.GrantConventional(alice, srv.ID, time.Hour,
		proxykit.Authorized{Entries: []proxykit.AuthorizedEntry{
			{Object: "/doc", Ops: []string{"read"}},
		}})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := srv.Challenge()
	pres, err := cap.Present(ch, srv.ID)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := srv.Authorize(&proxykit.Request{
		Object: "/doc", Op: "read",
		Proxies:   []*proxykit.Presentation{pres},
		Challenge: ch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Via != alice.ID {
		t.Fatalf("via = %v", dec.Via)
	}

	// A second end-server cannot accept it: the issued-for restriction
	// confines it, and it cannot unseal the proxy key anyway.
	other, err := realm.NewEndServer("file/srv2")
	if err != nil {
		t.Fatal(err)
	}
	other.SetACL("/doc", proxykit.NewACL(proxykit.ACLEntry(alice.ID, "read")))
	ch2, _ := other.Challenge()
	pres2, err := cap.Present(ch2, other.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Authorize(&proxykit.Request{
		Object: "/doc", Op: "read",
		Proxies:   []*proxykit.Presentation{pres2},
		Challenge: ch2,
	}); err == nil {
		t.Fatal("hybrid capability accepted by the wrong server")
	}
}

func TestStatefileIdentityECDHRoundTrip(t *testing.T) {
	// Exercised through the facade to also cover IdentityFromKeys.
	realm := proxykit.NewRealm("R.ORG")
	alice, _ := realm.NewIdentity("alice")
	if alice.ECDH() == nil {
		t.Fatal("identity lacks encryption key")
	}
	if _, err := realm.Directory().LookupEncryption(alice.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := realm.GrantConventional(alice, proxykit.NewPrincipal("ghost", "R.ORG"), time.Hour); err == nil {
		t.Fatal("grant to unpublished server accepted")
	}
}
