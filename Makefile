# proxykit — common development targets.

GO ?= go

.PHONY: all build vet test race check audit-verify gateway-smoke loadgen-smoke repl-smoke soak bench bench-smoke bench-rpc bench-ledger bench-loadgen crash experiments examples cover fuzz clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# The packages with concurrent hot paths (atomic metrics, TCP RPC,
# check clearing, retrying clients, the chaos suite) run under the race
# detector; `make check` includes this, the full suite does not need it
# on every run.
race:
	$(GO) test -race ./internal/transport/... ./internal/obs/... ./internal/accounting/... \
		./internal/chaos/... ./internal/faultpoint/... ./internal/svc/... \
		./internal/endserver/... ./internal/proxy/... ./internal/group/... \
		./internal/ledger/... ./internal/gateway/... ./internal/loadgen/... \
		./internal/soak/... ./internal/repl/...

check: build vet test race

# Round-trip an audit journal through the real `proxyctl audit verify`
# binary: a clean chain exits 0, a single flipped byte exits non-zero.
audit-verify:
	$(GO) test ./internal/integration/ -run TestAuditVerifyCLI -v

# Stand up the full edge path — gatewayd core against live TCP daemons —
# drive every HTTP API route (authorize, transfer, balance, check
# write/deposit, introspection), and verify the audit hash chains of
# the gateway, the end-server, and the bank afterwards.
gateway-smoke:
	$(GO) test ./internal/integration/ -run 'TestGateway(Smoke|EndToEnd|Impersonation|ErrorMapping|DocCatalogue)' -v -count=1

# Fast replication/failover subset: WAL shipping to a hot standby,
# semi-sync commit acknowledgment, snapshot catch-up, fenced promotion,
# and the end-to-end TCP failover (standby reads, promote via RPC,
# deposed primary refused) — the quick proof that -standby/-replicate-from
# and `proxyctl promote` still work. The kill-the-primary chaos test and
# the soak storm's promote-under-load audit are the heavier layers.
repl-smoke:
	$(GO) test ./internal/repl/ -run 'TestStandbyTailsPrimary|TestSemiSync|TestCatchUpViaSnapshot|TestPromote' -v -count=1
	$(GO) test ./internal/integration/ -run TestReplFailoverOverTCP -v -count=1

# Seeded 5-second mixed workload (authorize/transfer/deposit/gateway)
# through the full in-process topology via the open-loop generator:
# asserts zero SLO parse errors, zero op errors, and a well-formed
# BENCH_PR7.json report document.
loadgen-smoke:
	$(GO) test ./internal/loadgen/ -run TestLoadgenSmoke -v -count=1 -loadgen.duration=5s

# Kill-and-recover chaos suite: SIGKILL a bank at a fault-injected WAL
# append boundary, replay the ledger, and audit the recovered books
# (internal/chaos/crash_recovery_test.go), plus the lossless-recovery
# property tests over snapshot + WAL.
crash:
	$(GO) test ./internal/chaos/ -run TestCrashRecovery -v -count=1
	$(GO) test ./internal/accounting/ -run 'TestRecovery' -v -count=1

# Continuous mixed-scenario soak storm (internal/soak): every workload
# concurrently against a fresh multi-realm topology, fault injection on
# the clearing hop, SIGKILL crash/recovery of the child-process bank
# with a hot standby promoted and audited under load on every crash
# cycle, and an always-on verifier asserting conservation, exactly-once
# clearing, audit-chain integrity, and trace completeness. On a
# violation the run fails with the seed and a reproduction command.
# Override: make soak SOAK_TIME=10m SOAK_SEED=42
SOAK_TIME ?= 60s
SOAK_SEED ?= 1
# go test's own watchdog; 0 disables it so multi-hour soaks can run.
SOAK_TIMEOUT ?= 0

soak:
	$(GO) test ./internal/soak/ -run TestSoakStorm -v -count=1 \
		-timeout $(SOAK_TIMEOUT) -soak.time=$(SOAK_TIME) -soak.seed=$(SOAK_SEED)

bench:
	$(GO) test -bench=. -benchmem . ./internal/transport/

# One iteration of every benchmark — a CI smoke test that the
# benchmarks still compile and run, not a measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' . ./internal/transport/ ./internal/accounting/

# Regenerate BENCH_PR4.json (multiplexed-vs-serialized RPC throughput,
# cold-vs-warm chain-cache authorize latency).
bench-rpc:
	$(GO) run ./cmd/benchrpc -o BENCH_PR4.json

# Regenerate BENCH_PR9.json: the PR-5 WAL overhead trio (in-memory vs
# fsync=off vs fsync=always), the group-commit speedup matrix (8
# concurrent committers at fsync=always, batched vs per-append fsync,
# as raw ledger appends and striped bank transfers), and an open-loop
# loadgen run compared per-op against the BENCH_PR7.json baseline.
bench-ledger:
	$(GO) run ./cmd/loadgen -o .loadgen_pr9.json
	$(GO) run ./cmd/benchledger -loadgen .loadgen_pr9.json -loadgen-baseline BENCH_PR7.json -o BENCH_PR9.json
	rm -f .loadgen_pr9.json

# Regenerate BENCH_PR7.json (open-loop mixed workload against the
# in-process topology, judged against the standard SLO objectives).
bench-loadgen:
	$(GO) run ./cmd/loadgen -o BENCH_PR7.json

experiments:
	$(GO) run ./cmd/benchproxy

examples:
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d || exit 1; \
		echo; \
	done

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Each fuzzer runs for a short fixed budget (override with
# FUZZTIME=5m make fuzz for a longer local session).
FUZZTIME ?= 30s

fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=$(FUZZTIME) ./internal/restrict/
	$(GO) test -fuzz=FuzzUnmarshalCertificate -fuzztime=$(FUZZTIME) ./internal/proxy/
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzVerifyFile -fuzztime=$(FUZZTIME) ./internal/audit/
	$(GO) test -fuzz=FuzzReplayJournal -fuzztime=$(FUZZTIME) ./internal/ledger/

clean:
	rm -f cover.out test_output.txt bench_output.txt
