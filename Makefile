# proxykit — common development targets.

GO ?= go

.PHONY: all build vet test race bench experiments examples cover fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/benchproxy

examples:
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d || exit 1; \
		echo; \
	done

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/restrict/
	$(GO) test -fuzz=FuzzUnmarshalCertificate -fuzztime=30s ./internal/proxy/

clean:
	rm -f cover.out test_output.txt bench_output.txt
