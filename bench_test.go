// Benchmarks, one group per experiment of DESIGN.md / EXPERIMENTS.md.
// Each BenchmarkE<n>* regenerates the measured quantity behind the
// corresponding experiment table; cmd/benchproxy prints the full shaped
// tables (message counts, modeled latencies, cross-scheme comparisons).
package proxykit_test

import (
	"fmt"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/acl"
	"proxykit/internal/authz"
	"proxykit/internal/baseline/amoeba"
	"proxykit/internal/baseline/registry"
	"proxykit/internal/baseline/sollins"
	"proxykit/internal/endserver"
	"proxykit/internal/group"
	"proxykit/internal/kcrypto"
	"proxykit/internal/kerberos"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/replay"
	"proxykit/internal/restrict"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

const benchRealm = "BENCH.ORG"

// benchWorld provisions identities and a directory for benchmarks.
type benchWorld struct {
	dir *pubkey.Directory
	ids map[string]*pubkey.Identity
}

func newBenchWorld(b *testing.B, names ...string) *benchWorld {
	b.Helper()
	w := &benchWorld{dir: pubkey.NewDirectory(), ids: map[string]*pubkey.Identity{}}
	for _, n := range names {
		ident, err := pubkey.NewIdentity(principal.New(n, benchRealm))
		if err != nil {
			b.Fatal(err)
		}
		w.ids[n] = ident
		w.dir.RegisterIdentity(ident)
	}
	return w
}

func (w *benchWorld) id(name string) principal.ID { return principal.New(name, benchRealm) }

func (w *benchWorld) env(server string) *proxy.VerifyEnv {
	return &proxy.VerifyEnv{
		Server:          w.id(server),
		MaxSkew:         time.Minute,
		ResolveIdentity: w.dir.Resolver(),
	}
}

func benchRestrictions(n int) restrict.Set {
	rs := make(restrict.Set, 0, n)
	for i := 0; i < n; i++ {
		rs = append(rs, restrict.Quota{Currency: fmt.Sprintf("c%d", i), Limit: int64(i)})
	}
	return rs
}

// --- E1: Fig. 1, grant and verify ---

func BenchmarkE1Grant(b *testing.B) {
	for _, n := range []int{0, 8} {
		b.Run(fmt.Sprintf("restrictions=%d", n), func(b *testing.B) {
			w := newBenchWorld(b, "alice")
			rs := benchRestrictions(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := proxy.Grant(proxy.GrantParams{
					Grantor:       w.id("alice"),
					GrantorSigner: w.ids["alice"].Signer(),
					Restrictions:  rs,
					Lifetime:      time.Hour,
					Mode:          proxy.ModePublicKey,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE1Verify(b *testing.B) {
	for _, n := range []int{0, 8} {
		b.Run(fmt.Sprintf("restrictions=%d", n), func(b *testing.B) {
			w := newBenchWorld(b, "alice", "file")
			p, err := proxy.Grant(proxy.GrantParams{
				Grantor:       w.id("alice"),
				GrantorSigner: w.ids["alice"].Signer(),
				Restrictions:  benchRestrictions(n),
				Lifetime:      time.Hour,
				Mode:          proxy.ModePublicKey,
			})
			if err != nil {
				b.Fatal(err)
			}
			env := w.env("file")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.VerifyChain(p.Certs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2: Fig. 2, full composed request over the wire ---

func BenchmarkE2FullStack(b *testing.B) {
	w := newBenchWorld(b, "bob", "groups", "authz", "file")
	groupSrv := group.New(w.ids["groups"], nil)
	groupSrv.AddMember("staff", w.id("bob"))
	authzSrv := authz.New(w.ids["authz"], nil)
	authzSrv.AddRule(authz.Rule{
		EndServer: w.id("file"), Object: "/doc",
		Subject: acl.Subject{Groups: []principal.Global{groupSrv.Global("staff")}},
		Ops:     []string{"read"},
	})
	endSrv := endserver.New(w.id("file"), w.env("file"), nil)
	endSrv.SetACL("/doc", acl.New(acl.PrincipalEntry(authzSrv.ID, "read")))

	net := transport.NewNetwork()
	resolve := w.dir.Resolver()
	net.Register("groups", svc.NewGroupService(groupSrv, resolve, nil).Mux())
	net.Register("authz", svc.NewAuthzService(authzSrv, resolve, nil).Mux())
	net.Register("file", svc.NewEndService(endSrv, resolve, nil).Mux())

	gc := svc.NewGroupClient(net.MustDial("groups"), w.ids["bob"], nil)
	gp, err := gc.Grant(svc.GroupGrantParams{Groups: []string{"staff"}, Lifetime: time.Hour, Delegate: true})
	if err != nil {
		b.Fatal(err)
	}
	ac := svc.NewAuthzClient(net.MustDial("authz"), w.ids["bob"], nil)
	ap, err := ac.Grant(svc.GrantParams{
		EndServer: w.id("file"), Lifetime: time.Hour, Delegate: true,
		GroupProxies: []*proxy.Presentation{gp.PresentDelegate()},
	})
	if err != nil {
		b.Fatal(err)
	}
	ec := svc.NewEndClient(net.MustDial("file"), w.ids["bob"], nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ec.Request(svc.RequestParams{
			Object: "/doc", Op: "read",
			Proxies: []*proxy.Presentation{ap.PresentDelegate()},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: Fig. 3, authorization decision paths ---

func BenchmarkE3DirectACL(b *testing.B) {
	w := newBenchWorld(b, "alice", "file")
	endSrv := endserver.New(w.id("file"), w.env("file"), nil)
	endSrv.SetACL("/doc", acl.New(acl.PrincipalEntry(w.id("alice"), "read")))
	req := &endserver.Request{Object: "/doc", Op: "read", Identities: []principal.ID{w.id("alice")}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := endSrv.Authorize(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3AuthzProxySteadyState(b *testing.B) {
	w := newBenchWorld(b, "alice", "authz", "file")
	authzSrv := authz.New(w.ids["authz"], nil)
	authzSrv.AddRule(authz.Rule{
		EndServer: w.id("file"), Object: "/doc",
		Subject: acl.Subject{Principals: principal.NewCompound(w.id("alice"))},
		Ops:     []string{"read"},
	})
	endSrv := endserver.New(w.id("file"), w.env("file"), nil)
	endSrv.SetACL("/doc", acl.New(acl.PrincipalEntry(authzSrv.ID, "read")))
	p, err := authzSrv.Grant(&authz.GrantRequest{
		Client: w.id("alice"), EndServer: w.id("file"), Delegate: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	req := &endserver.Request{
		Object: "/doc", Op: "read",
		Identities: []principal.ID{w.id("alice")},
		Proxies:    []*proxy.Presentation{p.PresentDelegate()},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := endSrv.Authorize(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3RegistryBaseline(b *testing.B) {
	reg := registry.NewServer()
	alice := principal.New("alice", benchRealm)
	reg.AddMember("readers", alice)
	net := transport.NewNetwork()
	net.Register("reg", reg.Mux())
	es := registry.NewEndServer("readers", net.MustDial("reg"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := es.Authorize(alice); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: Fig. 4, cascaded chains ---

func buildChain(b *testing.B, w *benchWorld, length int) *proxy.Proxy {
	b.Helper()
	p, err := proxy.Grant(proxy.GrantParams{
		Grantor:       w.id("alice"),
		GrantorSigner: w.ids["alice"].Signer(),
		Restrictions:  benchRestrictions(2),
		Lifetime:      time.Hour,
		Mode:          proxy.ModePublicKey,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i < length; i++ {
		p, err = p.CascadeBearer(proxy.CascadeParams{
			Added: benchRestrictions(1), Lifetime: time.Hour, Mode: proxy.ModePublicKey,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return p
}

func BenchmarkE4CascadeVerify(b *testing.B) {
	for _, length := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("len=%d", length), func(b *testing.B) {
			w := newBenchWorld(b, "alice", "file")
			p := buildChain(b, w, length)
			env := w.env("file")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.VerifyChain(p.Certs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE4SollinsVerify(b *testing.B) {
	for _, length := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("len=%d", length), func(b *testing.B) {
			as := sollins.NewAuthServer()
			hops := make([]principal.ID, length+1)
			keys := make(map[principal.ID]*kcrypto.SymmetricKey, length)
			for i := range hops {
				hops[i] = principal.New(fmt.Sprintf("p%d", i), benchRealm)
				k, err := as.Register(hops[i])
				if err != nil {
					b.Fatal(err)
				}
				keys[hops[i]] = k
			}
			chain := sollins.Chain{}
			for i := 0; i < length; i++ {
				l, err := sollins.NewLink(hops[i], keys[hops[i]], hops[i+1], nil)
				if err != nil {
					b.Fatal(err)
				}
				chain = chain.Extend(l)
			}
			net := transport.NewNetwork()
			net.Register("as", as.Mux())
			asClient := net.MustDial("as")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sollins.Verify(chain, hops[length], asClient); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: Fig. 5, check clearing ---

func BenchmarkE5CheckClearing(b *testing.B) {
	for _, hops := range []int{1, 4} {
		b.Run(fmt.Sprintf("hops=%d", hops), func(b *testing.B) {
			w := newBenchWorld(b, "carol", "payee")
			banks := make([]*accounting.Server, hops)
			for i := range banks {
				name := fmt.Sprintf("bank%d", i)
				ident, err := pubkey.NewIdentity(principal.New(name, benchRealm))
				if err != nil {
					b.Fatal(err)
				}
				w.dir.RegisterIdentity(ident)
				banks[i] = accounting.NewServer(ident, w.dir.Resolver(), nil)
			}
			for i := 0; i+1 < hops; i++ {
				banks[i].SetNextHop(banks[i+1])
			}
			payorBank, payeeBank := banks[hops-1], banks[0]
			if err := payorBank.CreateAccount("carol", w.id("carol")); err != nil {
				b.Fatal(err)
			}
			if err := payorBank.Mint("carol", "d", 1<<40); err != nil {
				b.Fatal(err)
			}
			if err := payeeBank.CreateAccount("payee", w.id("payee")); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := accounting.WriteCheck(accounting.WriteCheckParams{
					Payor: w.ids["carol"], Bank: payorBank.ID, Account: "carol",
					Payee: w.id("payee"), Currency: "d", Amount: 1,
					Lifetime: time.Hour,
				})
				if err != nil {
					b.Fatal(err)
				}
				endorsed, err := c.Endorse(w.ids["payee"], payeeBank.ID, payeeBank.ID,
					payeeBank.Global("payee"), true, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := payeeBank.DepositCheck(endorsed, []principal.ID{w.id("payee")}, "payee"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: Fig. 6, public-key vs conventional presentation ---

func BenchmarkE6Present(b *testing.B) {
	w := newBenchWorld(b, "alice", "file")
	endKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		b.Fatal(err)
	}
	session, err := kcrypto.NewSymmetricKey()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []proxy.Mode{proxy.ModePublicKey, proxy.ModeConventional} {
		b.Run(mode.String(), func(b *testing.B) {
			params := proxy.GrantParams{
				Grantor:       w.id("alice"),
				GrantorSigner: w.ids["alice"].Signer(),
				Restrictions:  benchRestrictions(4),
				Lifetime:      time.Hour,
				Mode:          mode,
				EndServerKey:  endKey,
			}
			env := w.env("file")
			if mode == proxy.ModeConventional {
				params.GrantorSigner = session
				convEnv := *env
				convEnv.ResolveIdentity = func(principal.ID) (kcrypto.Verifier, error) { return session, nil }
				convEnv.UnsealProxyKey = proxy.UnsealWith(endKey)
				env = &convEnv
			}
			p, err := proxy.Grant(params)
			if err != nil {
				b.Fatal(err)
			}
			ch, err := proxy.NewChallenge()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pres, err := p.Present(ch, w.id("file"))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := env.VerifyPresentation(pres, ch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: §7, restriction evaluation ---

func BenchmarkE7RestrictionCheck(b *testing.B) {
	alice := principal.New("alice", benchRealm)
	fileSv := principal.New("file", benchRealm)
	staff := principal.NewGlobal(principal.New("groups", benchRealm), "staff")
	ctx := &restrict.Context{
		Server:           fileSv,
		Object:           "/obj",
		Operation:        "read",
		ClientIdentities: []principal.ID{alice},
		VerifiedGroups:   map[principal.Global]bool{staff: true},
		Amounts:          map[string]int64{"pages": 5},
	}
	cases := []struct {
		name string
		r    restrict.Restriction
	}{
		{"grantee", restrict.Grantee{Principals: []principal.ID{alice}}},
		{"issued-for", restrict.IssuedFor{Servers: []principal.ID{fileSv}}},
		{"quota", restrict.Quota{Currency: "pages", Limit: 100}},
		{"authorized", restrict.Authorized{Entries: []restrict.AuthorizedEntry{{Object: "/obj", Ops: []string{"read"}}}}},
		{"for-use-by-group", restrict.ForUseByGroup{Groups: []principal.Global{staff}}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.r.Check(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE7AcceptOnce(b *testing.B) {
	reg := replay.New(nil)
	expires := time.Now().Add(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.Accept("grantor", fmt.Sprintf("id-%d", i), expires); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7AcceptOnceNoSweep(b *testing.B) {
	reg := replay.New(nil)
	reg.SweepEvery = 0
	expires := time.Now().Add(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.Accept("grantor", fmt.Sprintf("id-%d", i), expires); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: §5, Amoeba prepay vs checks ---

func BenchmarkE8AmoebaServe(b *testing.B) {
	bank := amoeba.NewBank()
	client := principal.New("c", benchRealm)
	server := principal.New("s", benchRealm)
	bank.Mint(client, "credits", 1<<40)
	net := transport.NewNetwork()
	net.Register("bank", bank.Mux())
	bc := net.MustDial("bank")
	if err := amoeba.NewClient(client, bc).Prepay(server, "credits", 1<<30); err != nil {
		b.Fatal(err)
	}
	service := amoeba.NewService(server, bc, "credits", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := service.Serve(client); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8CheckQuotaServe(b *testing.B) {
	// The check-based analogue of one chargeable request: the server
	// debits the presented quota locally — no bank round trip.
	w := newBenchWorld(b, "carol", "srv")
	p, err := proxy.Grant(proxy.GrantParams{
		Grantor:       w.id("carol"),
		GrantorSigner: w.ids["carol"].Signer(),
		Restrictions:  restrict.Set{restrict.Quota{Currency: "credits", Limit: 1 << 30}},
		Lifetime:      time.Hour,
		Mode:          proxy.ModePublicKey,
	})
	if err != nil {
		b.Fatal(err)
	}
	env := w.env("srv")
	v, err := env.VerifyChain(p.Certs)
	if err != nil {
		b.Fatal(err)
	}
	ctx := &restrict.Context{Server: w.id("srv"), Amounts: map[string]int64{"credits": 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Authorize(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: §6.3, TGS proxy ---

func BenchmarkE9TGSProxyTicket(b *testing.B) {
	kdc, err := kerberos.NewKDC(benchRealm, nil)
	if err != nil {
		b.Fatal(err)
	}
	aliceID := principal.New("alice", benchRealm)
	aliceKey, err := kdc.RegisterWithPassword(aliceID, "pw")
	if err != nil {
		b.Fatal(err)
	}
	fileID := principal.New("file", benchRealm)
	if _, err := kdc.RegisterWithPassword(fileID, "spw"); err != nil {
		b.Fatal(err)
	}
	alice := kerberos.NewClient(aliceID, aliceKey, nil)
	tgt, err := alice.Login(kdc, kdc.TGS(), time.Hour, nil)
	if err != nil {
		b.Fatal(err)
	}
	px, err := kerberos.MakeProxy(tgt, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	bobID := principal.New("bob", benchRealm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kerberos.RequestTicketWithProxy(kdc, px, bobID, fileID, time.Hour, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: §3.5, decision paths ---

func BenchmarkE10DecisionPaths(b *testing.B) {
	w := newBenchWorld(b, "alice", "host", "file")
	endSrv := endserver.New(w.id("file"), w.env("file"), nil)
	endSrv.SetACL("/direct", acl.New(acl.PrincipalEntry(w.id("alice"), "read")))
	endSrv.SetACL("/compound", acl.New(acl.Entry{
		Subject: acl.Subject{Principals: principal.NewCompound(w.id("alice"), w.id("host"))},
		Ops:     []string{"read"},
	}))
	cap, err := proxy.Grant(proxy.GrantParams{
		Grantor:       w.id("alice"),
		GrantorSigner: w.ids["alice"].Signer(),
		Restrictions:  restrict.Set{restrict.Grantee{Principals: []principal.ID{w.id("host")}}},
		Lifetime:      time.Hour,
		Mode:          proxy.ModePublicKey,
	})
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		req  *endserver.Request
	}{
		{"pureACL", &endserver.Request{Object: "/direct", Op: "read", Identities: []principal.ID{w.id("alice")}}},
		{"compound", &endserver.Request{Object: "/compound", Op: "read", Identities: []principal.ID{w.id("alice"), w.id("host")}}},
		{"capability", &endserver.Request{
			Object: "/direct", Op: "read",
			Identities: []principal.ID{w.id("host")},
			Proxies:    []*proxy.Presentation{cap.PresentDelegate()},
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := endSrv.Authorize(c.req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Verified-chain cache: cold vs cached authorize (DESIGN.md §6) ---

// BenchmarkChainVerifyColdVsCached isolates what the cache buys on the
// VerifyChain hot path: cache=false re-verifies every certificate
// signature and key binding; cache=true skips the signature work on a
// hit but still re-checks validity windows.
func BenchmarkChainVerifyColdVsCached(b *testing.B) {
	for _, length := range []int{1, 4} {
		for _, cached := range []bool{false, true} {
			b.Run(fmt.Sprintf("len=%d/cache=%v", length, cached), func(b *testing.B) {
				w := newBenchWorld(b, "alice", "file")
				p := buildChain(b, w, length)
				env := w.env("file")
				if cached {
					env.Cache = proxy.NewChainCache(16)
					if _, err := env.VerifyChain(p.Certs); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := env.VerifyChain(p.Certs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAuthorizeColdVsWarm runs the full end-server bearer
// authorize path — fresh challenge, possession proof, replay check,
// ACL — with and without a warm chain cache. Both variants pay the
// per-request challenge/proof cost; the delta is the cached signature
// verification.
func BenchmarkAuthorizeColdVsWarm(b *testing.B) {
	for _, cached := range []bool{false, true} {
		b.Run(fmt.Sprintf("cache=%v", cached), func(b *testing.B) {
			w := newBenchWorld(b, "alice", "file")
			endSrv := endserver.New(w.id("file"), w.env("file"), nil)
			if cached {
				endSrv.SetChainCache(proxy.NewChainCache(16))
			}
			endSrv.SetACL("/doc", acl.New(acl.PrincipalEntry(w.id("alice"), "read")))
			p, err := proxy.Grant(proxy.GrantParams{
				Grantor:       w.id("alice"),
				GrantorSigner: w.ids["alice"].Signer(),
				Lifetime:      time.Hour,
				Mode:          proxy.ModePublicKey,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch, err := endSrv.Challenge()
				if err != nil {
					b.Fatal(err)
				}
				pr, err := p.Present(ch, w.id("file"))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := endSrv.Authorize(&endserver.Request{
					Object: "/doc", Op: "read",
					Proxies: []*proxy.Presentation{pr}, Challenge: ch,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: restriction evaluation order (DESIGN.md §5) ---

// BenchmarkE7EvalOrder compares evaluating a restriction set in
// declaration order against cheap-first ordering when an expensive
// stateful restriction (accept-once) sits first. Conjunction semantics
// make order irrelevant to the outcome, so implementations are free to
// reorder; this quantifies what reordering would buy on a failing
// request that a cheap restriction rejects.
func BenchmarkE7EvalOrder(b *testing.B) {
	fileSv := principal.New("file", benchRealm)
	reg := replay.New(nil)
	expensiveFirst := restrict.Set{
		restrict.AcceptOnce{ID: "fixed"},                                                // stateful, hits the registry
		restrict.IssuedFor{Servers: []principal.ID{principal.New("other", benchRealm)}}, // fails
	}
	cheapFirst := restrict.Set{
		restrict.IssuedFor{Servers: []principal.ID{principal.New("other", benchRealm)}}, // fails
		restrict.AcceptOnce{ID: "fixed"},
	}
	ctx := &restrict.Context{
		Server:     fileSv,
		Now:        time.Now(),
		Expires:    time.Now().Add(time.Hour),
		AcceptOnce: reg,
	}
	b.Run("declaration-order-expensive-first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx.GrantorKeyID = fmt.Sprintf("g%d", i) // fresh accept-once namespace
			if err := expensiveFirst.Check(ctx); err == nil {
				b.Fatal("expected denial")
			}
		}
	})
	b.Run("cheap-first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx.GrantorKeyID = fmt.Sprintf("g%d", i)
			if err := cheapFirst.Check(ctx); err == nil {
				b.Fatal("expected denial")
			}
		}
	})
}
