// Command groupd runs a group server (§3.3) over TCP.
//
// Groups are loaded from a JSON file mapping group names to member
// lists; members containing '%' are nested groups (possibly maintained
// by other group servers):
//
//	{
//	  "staff": ["alice@EXAMPLE.ORG", "developers%groups@EXAMPLE.ORG"],
//	  "developers": ["bob@EXAMPLE.ORG"]
//	}
//
//	groupd -state ./state -name groups -listen :8091 -groups groups.json
//
// With -metrics-addr set, a side HTTP listener serves /metrics
// (Prometheus text; ?format=json for JSON), /healthz, /traces (recent
// RPC spans), /audit (the audit journal tail), and /debug/pprof. See
// OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"proxykit/internal/audit"
	"proxykit/internal/faultpoint"
	"proxykit/internal/group"
	"proxykit/internal/ledger"
	"proxykit/internal/logging"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/repl"
	"proxykit/internal/statefile"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

func main() {
	if err := run(); err != nil {
		slog.Error("groupd failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		state       = flag.String("state", "./state", "shared state directory")
		name        = flag.String("name", "groups", "server principal name")
		realm       = flag.String("realm", "EXAMPLE.ORG", "realm name")
		listen      = flag.String("listen", "127.0.0.1:8091", "listen address")
		groups      = flag.String("groups", "", "JSON groups file")
		metricsAddr = flag.String("metrics-addr", "", "observability HTTP listen address serving /metrics, /healthz, /traces, /audit, and /debug/pprof (disabled when empty)")
		auditFile   = flag.String("audit-file", "", "hash-chained audit journal path (JSONL, append-only); empty keeps the journal in memory only")
		faultSpec   = flag.String("fault-spec", "", "server-side fault injection, e.g. 'group.*:drop=0.1,delay=50ms@0.2' (chaos testing; see internal/faultpoint)")
		faultSeed   = flag.Int64("fault-seed", 1, "PRNG seed for -fault-spec decisions")
		rpcWorkers  = flag.Int("rpc-workers", 0, "bound on concurrently handled RPC requests (0 = default pool size)")
		chainCache  = flag.Int("chain-cache", proxy.DefaultChainCacheSize, "verified-chain cache capacity; 0 disables caching")
		ledgerDir   = flag.String("ledger-dir", "", "durable ledger directory (WAL + snapshots); empty keeps the group database in memory only")
		fsyncMode   = flag.String("fsync", "always", "WAL durability: always (fsync per append), interval (periodic fsync), off (buffered)")
		groupCommit = flag.Bool("group-commit", true, "batch concurrent fsync=always appends into commit cohorts (one fsync per batch)")
		snapEvery   = flag.Duration("snapshot-interval", time.Minute, "how often the ledger snapshots the database and truncates the WAL; 0 disables the background snapshotter")
		replFlags   repl.Flags
		logOpts     logging.Options
		traceOpts   obs.TraceOptions
	)
	replFlags.Register(flag.CommandLine)
	logOpts.RegisterFlags(flag.CommandLine)
	traceOpts.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logOpts.Setup(nil)
	if err != nil {
		return err
	}

	obsCleanup, err := traceOpts.Apply()
	if err != nil {
		return err
	}
	defer obsCleanup()

	journal, err := audit.New(audit.Options{Path: *auditFile, Logger: logger})
	if err != nil {
		return err
	}
	defer journal.Close()

	ident, err := statefile.LoadOrCreateIdentity(*state, principal.New(*name, *realm))
	if err != nil {
		return err
	}
	resolve := statefile.DynamicResolver(*state)
	srv := group.New(ident, nil)
	if *ledgerDir != "" {
		mode, err := ledger.ParseFsyncMode(*fsyncMode)
		if err != nil {
			return err
		}
		rec, err := srv.OpenLedger(ledger.Options{Dir: *ledgerDir, Fsync: mode, NoGroupCommit: !*groupCommit, Logger: logger})
		if err != nil {
			return err
		}
		defer srv.CloseLedger()
		logger.Info("ledger open", "dir", *ledgerDir, "fsync", mode.String(),
			"replayed", len(rec.Entries), "snapshotSeq", rec.SnapshotSeq, "tornTail", rec.TornTail)
		if *snapEvery > 0 {
			stopSnap := srv.StartSnapshotter(*snapEvery)
			defer stopSnap()
		}
	}
	srv.SetJournal(journal)

	gsvc := svc.NewGroupService(srv, resolve, nil)
	if *chainCache > 0 {
		gsvc.SetChainCache(proxy.NewChainCache(*chainCache))
		logger.Info("verified-chain cache enabled", "capacity", *chainCache)
	}
	mux := gsvc.Mux()
	replNode, err := replFlags.Start(srv, *ledgerDir, mux, logger)
	if err != nil {
		return err
	}
	if replNode != nil {
		defer replNode.Close()
	}

	if *metricsAddr != "" {
		msrv, maddr, err := obs.ServeWith(*metricsAddr, obs.HandlerOpts{
			Audit: journal,
			Health: func() map[string]any {
				h := journal.Health()
				if lg := srv.Ledger(); lg != nil {
					for k, v := range lg.Health() {
						h[k] = v
					}
				}
				if replNode != nil {
					for k, v := range replNode.Health() {
						h[k] = v
					}
				}
				return h
			},
		})
		if err != nil {
			return err
		}
		defer msrv.Close()
		logger.Info("metrics listening", "url", fmt.Sprintf("http://%s/metrics", maddr))
	}

	// Provision from the file only when the database came up empty —
	// a ledger-recovered database already contains these groups (plus
	// any later edits), and re-adding nested groups would duplicate
	// their entries. A standby's database comes from the primary's WAL.
	if *groups != "" && len(srv.Groups()) == 0 && !replFlags.Standby {
		n, err := loadGroups(srv, *groups)
		if err != nil {
			return err
		}
		logger.Info("loaded groups", "count", n, "file", *groups)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	tcp := transport.NewTCPServerWorkers(l, mux, *rpcWorkers)
	if *faultSpec != "" {
		inj, err := faultpoint.Parse(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		tcp.SetInjector(inj)
		logger.Warn("fault injection active", "spec", *faultSpec, "seed", *faultSeed)
	}
	logger.Info("group server listening", "server", ident.ID.String(), "addr", tcp.Addr().String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return tcp.Close()
}

func loadGroups(srv *group.Server, path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var gs map[string][]string
	if err := json.Unmarshal(raw, &gs); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	for name, members := range gs {
		srv.AddGroup(name)
		for _, m := range members {
			if strings.Contains(m, "%") {
				nested, err := principal.ParseGlobal(m)
				if err != nil {
					return 0, err
				}
				srv.AddNestedGroup(name, nested)
				continue
			}
			id, err := principal.Parse(m)
			if err != nil {
				return 0, err
			}
			srv.AddMember(name, id)
		}
	}
	return len(gs), nil
}
