// Command authzd runs an authorization server (§3.2) over TCP.
//
// The server's identity is created (or loaded) in the shared state
// directory; its database is loaded from a JSON rules file:
//
//	[
//	  {"endServer": "file/srv1@EXAMPLE.ORG", "object": "/shared/doc",
//	   "principals": ["alice@EXAMPLE.ORG"],
//	   "groups": ["staff%groups@EXAMPLE.ORG"],
//	   "ops": ["read"]}
//	]
//
//	authzd -state ./state -name authz -listen :8090 -rules rules.json
//
// With -metrics-addr set, a side HTTP listener serves /metrics
// (Prometheus text; ?format=json for JSON), /healthz, /traces (recent
// RPC spans), /audit (the audit journal tail), and /debug/pprof. See
// OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/audit"
	"proxykit/internal/authz"
	"proxykit/internal/faultpoint"
	"proxykit/internal/ledger"
	"proxykit/internal/logging"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/repl"
	"proxykit/internal/statefile"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

// ruleJSON is the rules-file schema.
type ruleJSON struct {
	EndServer  string   `json:"endServer"`
	Object     string   `json:"object"`
	Principals []string `json:"principals"`
	Groups     []string `json:"groups"`
	Ops        []string `json:"ops"`
}

func main() {
	if err := run(); err != nil {
		slog.Error("authzd failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		state       = flag.String("state", "./state", "shared state directory")
		name        = flag.String("name", "authz", "server principal name")
		realm       = flag.String("realm", "EXAMPLE.ORG", "realm name")
		listen      = flag.String("listen", "127.0.0.1:8090", "listen address")
		rules       = flag.String("rules", "", "JSON rules file")
		metricsAddr = flag.String("metrics-addr", "", "observability HTTP listen address serving /metrics, /healthz, /traces, /audit, and /debug/pprof (disabled when empty)")
		auditFile   = flag.String("audit-file", "", "hash-chained audit journal path (JSONL, append-only); empty keeps the journal in memory only")
		faultSpec   = flag.String("fault-spec", "", "server-side fault injection, e.g. 'authz.*:drop=0.1,delay=50ms@0.2' (chaos testing; see internal/faultpoint)")
		faultSeed   = flag.Int64("fault-seed", 1, "PRNG seed for -fault-spec decisions")
		rpcWorkers  = flag.Int("rpc-workers", 0, "bound on concurrently handled RPC requests (0 = default pool size)")
		chainCache  = flag.Int("chain-cache", proxy.DefaultChainCacheSize, "verified-chain cache capacity; 0 disables caching")
		ledgerDir   = flag.String("ledger-dir", "", "durable ledger directory (WAL + snapshots); empty keeps the rule database in memory only")
		fsyncMode   = flag.String("fsync", "always", "WAL durability: always (fsync per append), interval (periodic fsync), off (buffered)")
		groupCommit = flag.Bool("group-commit", true, "batch concurrent fsync=always appends into commit cohorts (one fsync per batch)")
		snapEvery   = flag.Duration("snapshot-interval", time.Minute, "how often the ledger snapshots the database and truncates the WAL; 0 disables the background snapshotter")
		replFlags   repl.Flags
		logOpts     logging.Options
		traceOpts   obs.TraceOptions
	)
	replFlags.Register(flag.CommandLine)
	logOpts.RegisterFlags(flag.CommandLine)
	traceOpts.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logOpts.Setup(nil)
	if err != nil {
		return err
	}

	obsCleanup, err := traceOpts.Apply()
	if err != nil {
		return err
	}
	defer obsCleanup()

	journal, err := audit.New(audit.Options{Path: *auditFile, Logger: logger})
	if err != nil {
		return err
	}
	defer journal.Close()

	ident, err := statefile.LoadOrCreateIdentity(*state, principal.New(*name, *realm))
	if err != nil {
		return err
	}
	resolve := statefile.DynamicResolver(*state)
	srv := authz.New(ident, nil)
	if *ledgerDir != "" {
		mode, err := ledger.ParseFsyncMode(*fsyncMode)
		if err != nil {
			return err
		}
		rec, err := srv.OpenLedger(ledger.Options{Dir: *ledgerDir, Fsync: mode, NoGroupCommit: !*groupCommit, Logger: logger})
		if err != nil {
			return err
		}
		defer srv.CloseLedger()
		logger.Info("ledger open", "dir", *ledgerDir, "fsync", mode.String(),
			"replayed", len(rec.Entries), "snapshotSeq", rec.SnapshotSeq, "tornTail", rec.TornTail)
		if *snapEvery > 0 {
			stopSnap := srv.StartSnapshotter(*snapEvery)
			defer stopSnap()
		}
	}
	srv.SetJournal(journal)

	asvc := svc.NewAuthzService(srv, resolve, nil)
	if *chainCache > 0 {
		asvc.SetChainCache(proxy.NewChainCache(*chainCache))
		logger.Info("verified-chain cache enabled", "capacity", *chainCache)
	}
	mux := asvc.Mux()
	replNode, err := replFlags.Start(srv, *ledgerDir, mux, logger)
	if err != nil {
		return err
	}
	if replNode != nil {
		defer replNode.Close()
	}

	if *metricsAddr != "" {
		msrv, maddr, err := obs.ServeWith(*metricsAddr, obs.HandlerOpts{
			Audit: journal,
			Health: func() map[string]any {
				h := journal.Health()
				if lg := srv.Ledger(); lg != nil {
					for k, v := range lg.Health() {
						h[k] = v
					}
				}
				if replNode != nil {
					for k, v := range replNode.Health() {
						h[k] = v
					}
				}
				return h
			},
		})
		if err != nil {
			return err
		}
		defer msrv.Close()
		logger.Info("metrics listening", "url", fmt.Sprintf("http://%s/metrics", maddr))
	}

	// Provision from the file only when the database came up empty — a
	// ledger-recovered database already holds these rules, and AddRule
	// appends, so reloading would duplicate every rule per restart. A
	// standby's database comes from the primary's WAL.
	if *rules != "" && len(srv.Rules()) == 0 && !replFlags.Standby {
		n, err := loadRules(srv, *rules)
		if err != nil {
			return err
		}
		logger.Info("loaded rules", "count", n, "file", *rules)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	tcp := transport.NewTCPServerWorkers(l, mux, *rpcWorkers)
	if *faultSpec != "" {
		inj, err := faultpoint.Parse(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		tcp.SetInjector(inj)
		logger.Warn("fault injection active", "spec", *faultSpec, "seed", *faultSeed)
	}
	logger.Info("authorization server listening", "server", ident.ID.String(), "addr", tcp.Addr().String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return tcp.Close()
}

func loadRules(srv *authz.Server, path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rs []ruleJSON
	if err := json.Unmarshal(raw, &rs); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	for _, r := range rs {
		endServer, err := principal.Parse(r.EndServer)
		if err != nil {
			return 0, err
		}
		subject, err := parseSubject(r.Principals, r.Groups)
		if err != nil {
			return 0, err
		}
		srv.AddRule(authz.Rule{
			EndServer: endServer,
			Object:    r.Object,
			Subject:   subject,
			Ops:       r.Ops,
		})
	}
	return len(rs), nil
}

func parseSubject(principals, groups []string) (acl.Subject, error) {
	var sub acl.Subject
	ids := make([]principal.ID, 0, len(principals))
	for _, p := range principals {
		id, err := principal.Parse(p)
		if err != nil {
			return sub, err
		}
		ids = append(ids, id)
	}
	sub.Principals = principal.NewCompound(ids...)
	for _, g := range groups {
		gl, err := principal.ParseGlobal(g)
		if err != nil {
			return sub, err
		}
		sub.Groups = append(sub.Groups, gl)
	}
	return sub, nil
}
