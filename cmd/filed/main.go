// Command filed runs an application end-server (a file server) over
// TCP, authorizing operations via ACLs and restricted proxies (§3.5).
//
// Per-object ACLs are loaded from a JSON file:
//
//	{
//	  "/shared/doc": [
//	    {"principals": ["alice@EXAMPLE.ORG"], "ops": ["read", "write"]},
//	    {"groups": ["staff%groups@EXAMPLE.ORG"], "ops": ["read"]}
//	  ]
//	}
//
//	filed -state ./state -name file/srv1 -listen :8093 -acl acl.json
//
// With -metrics-addr set, a side HTTP listener serves /metrics
// (Prometheus text; ?format=json for JSON), /healthz, /traces (recent
// RPC spans), /audit (the audit journal tail), and /debug/pprof. See
// OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"

	"proxykit/internal/acl"
	"proxykit/internal/audit"
	"proxykit/internal/endserver"
	"proxykit/internal/faultpoint"
	"proxykit/internal/logging"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/statefile"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

// entryJSON is the ACL-file schema.
type entryJSON struct {
	Principals []string `json:"principals"`
	Groups     []string `json:"groups"`
	Ops        []string `json:"ops"`
}

func main() {
	if err := run(); err != nil {
		slog.Error("filed failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		state       = flag.String("state", "./state", "shared state directory")
		name        = flag.String("name", "file/srv1", "server principal name")
		realm       = flag.String("realm", "EXAMPLE.ORG", "realm name")
		listen      = flag.String("listen", "127.0.0.1:8093", "listen address")
		aclFile     = flag.String("acl", "", "JSON ACL file")
		metricsAddr = flag.String("metrics-addr", "", "observability HTTP listen address serving /metrics, /healthz, /traces, /audit, and /debug/pprof (disabled when empty)")
		auditFile   = flag.String("audit-file", "", "hash-chained audit journal path (JSONL, append-only); empty keeps the journal in memory only")
		faultSpec   = flag.String("fault-spec", "", "server-side fault injection, e.g. 'end.*:drop=0.1,delay=50ms@0.2' (chaos testing; see internal/faultpoint)")
		faultSeed   = flag.Int64("fault-seed", 1, "PRNG seed for -fault-spec decisions")
		rpcWorkers  = flag.Int("rpc-workers", 0, "bound on concurrently handled RPC requests (0 = default pool size)")
		chainCache  = flag.Int("chain-cache", proxy.DefaultChainCacheSize, "verified-chain cache capacity; 0 disables caching")
		logOpts     logging.Options
		traceOpts   obs.TraceOptions
	)
	logOpts.RegisterFlags(flag.CommandLine)
	traceOpts.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logOpts.Setup(nil)
	if err != nil {
		return err
	}

	obsCleanup, err := traceOpts.Apply()
	if err != nil {
		return err
	}
	defer obsCleanup()

	journal, err := audit.New(audit.Options{Path: *auditFile, Logger: logger})
	if err != nil {
		return err
	}
	defer journal.Close()

	if *metricsAddr != "" {
		msrv, maddr, err := obs.ServeWith(*metricsAddr, obs.HandlerOpts{
			Audit:  journal,
			Health: journal.Health,
		})
		if err != nil {
			return err
		}
		defer msrv.Close()
		logger.Info("metrics listening", "url", fmt.Sprintf("http://%s/metrics", maddr))
	}

	ident, err := statefile.LoadOrCreateIdentity(*state, principal.New(*name, *realm))
	if err != nil {
		return err
	}
	resolve := statefile.DynamicResolver(*state)
	env := &proxy.VerifyEnv{ResolveIdentity: resolve}
	srv := endserver.New(ident.ID, env, nil)
	srv.SetJournal(journal)
	if *chainCache > 0 {
		srv.SetChainCache(proxy.NewChainCache(*chainCache))
		logger.Info("verified-chain cache enabled", "capacity", *chainCache)
	}
	if *aclFile != "" {
		n, err := loadACLs(srv, *aclFile)
		if err != nil {
			return err
		}
		logger.Info("loaded ACLs", "objects", n, "file", *aclFile)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	tcp := transport.NewTCPServerWorkers(l, svc.NewEndService(srv, resolve, nil).Mux(), *rpcWorkers)
	if *faultSpec != "" {
		inj, err := faultpoint.Parse(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		tcp.SetInjector(inj)
		logger.Warn("fault injection active", "spec", *faultSpec, "seed", *faultSeed)
	}
	logger.Info("end-server listening", "server", ident.ID.String(), "addr", tcp.Addr().String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return tcp.Close()
}

func loadACLs(srv *endserver.Server, path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var objects map[string][]entryJSON
	if err := json.Unmarshal(raw, &objects); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	for object, entries := range objects {
		a := acl.New()
		for _, e := range entries {
			var sub acl.Subject
			ids := make([]principal.ID, 0, len(e.Principals))
			for _, p := range e.Principals {
				id, err := principal.Parse(p)
				if err != nil {
					return 0, err
				}
				ids = append(ids, id)
			}
			sub.Principals = principal.NewCompound(ids...)
			for _, g := range e.Groups {
				gl, err := principal.ParseGlobal(g)
				if err != nil {
					return 0, err
				}
				sub.Groups = append(sub.Groups, gl)
			}
			a.Add(acl.Entry{Subject: sub, Ops: e.Ops})
		}
		srv.SetACL(object, a)
	}
	return len(objects), nil
}
