// Command kdc runs the Kerberos-style key distribution center (§6.2):
// the authentication and ticket-granting services for one realm.
//
// Principals are provisioned from a password file with one
// "principal:password" entry per line; service principals get keys
// derived from their passwords the same way (servers run with the same
// password to derive the matching key).
//
//	kdc -realm ATHENA.EXAMPLE.ORG -listen :8088 -passwd passwd.txt
//
// With -metrics-addr set, a side HTTP listener serves /metrics
// (Prometheus text; ?format=json for JSON), /healthz, /traces (recent
// RPC spans), and /debug/pprof. See OBSERVABILITY.md.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"proxykit/internal/kerberos"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		realm       = flag.String("realm", "EXAMPLE.ORG", "realm name")
		listen      = flag.String("listen", "127.0.0.1:8088", "listen address")
		passwd      = flag.String("passwd", "", "password file: principal:password per line")
		metricsAddr = flag.String("metrics-addr", "", "observability HTTP listen address serving /metrics, /healthz, /traces, and /debug/pprof (disabled when empty)")
	)
	flag.Parse()

	if *metricsAddr != "" {
		msrv, maddr, err := obs.Serve(*metricsAddr, nil, nil)
		if err != nil {
			return err
		}
		defer msrv.Close()
		log.Printf("metrics listening on http://%s/metrics", maddr)
	}

	kdc, err := kerberos.NewKDC(*realm, nil)
	if err != nil {
		return err
	}
	if *passwd != "" {
		n, err := loadPasswords(kdc, *passwd)
		if err != nil {
			return err
		}
		log.Printf("provisioned %d principals from %s", n, *passwd)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := transport.NewTCPServer(l, svc.NewKDCService(kdc).Mux())
	log.Printf("kdc for realm %s listening on %s (tgs: %s)", *realm, srv.Addr(), kdc.TGS())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	return srv.Close()
}

func loadPasswords(kdc *kerberos.KDC, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, password, ok := strings.Cut(line, ":")
		if !ok {
			return n, fmt.Errorf("malformed line %q", line)
		}
		id, err := principal.Parse(strings.TrimSpace(name))
		if err != nil {
			return n, err
		}
		if _, err := kdc.RegisterWithPassword(id, strings.TrimSpace(password)); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}
