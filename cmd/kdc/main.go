// Command kdc runs the Kerberos-style key distribution center (§6.2):
// the authentication and ticket-granting services for one realm.
//
// Principals are provisioned from a password file with one
// "principal:password" entry per line; service principals get keys
// derived from their passwords the same way (servers run with the same
// password to derive the matching key).
//
//	kdc -realm ATHENA.EXAMPLE.ORG -listen :8088 -passwd passwd.txt
//
// With -metrics-addr set, a side HTTP listener serves /metrics
// (Prometheus text; ?format=json for JSON), /healthz, /traces (recent
// RPC spans), /audit (the audit journal tail), and /debug/pprof. See
// OBSERVABILITY.md.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"proxykit/internal/audit"
	"proxykit/internal/faultpoint"
	"proxykit/internal/kerberos"
	"proxykit/internal/logging"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

func main() {
	if err := run(); err != nil {
		slog.Error("kdc failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		realm       = flag.String("realm", "EXAMPLE.ORG", "realm name")
		listen      = flag.String("listen", "127.0.0.1:8088", "listen address")
		passwd      = flag.String("passwd", "", "password file: principal:password per line")
		metricsAddr = flag.String("metrics-addr", "", "observability HTTP listen address serving /metrics, /healthz, /traces, /audit, and /debug/pprof (disabled when empty)")
		auditFile   = flag.String("audit-file", "", "hash-chained audit journal path (JSONL, append-only); empty keeps the journal in memory only")
		faultSpec   = flag.String("fault-spec", "", "server-side fault injection, e.g. 'krb.*:drop=0.1,delay=50ms@0.2' (chaos testing; see internal/faultpoint)")
		faultSeed   = flag.Int64("fault-seed", 1, "PRNG seed for -fault-spec decisions")
		rpcWorkers  = flag.Int("rpc-workers", 0, "bound on concurrently handled RPC requests (0 = default pool size)")
		logOpts     logging.Options
		traceOpts   obs.TraceOptions
	)
	logOpts.RegisterFlags(flag.CommandLine)
	traceOpts.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logOpts.Setup(nil)
	if err != nil {
		return err
	}

	obsCleanup, err := traceOpts.Apply()
	if err != nil {
		return err
	}
	defer obsCleanup()

	journal, err := audit.New(audit.Options{Path: *auditFile, Logger: logger})
	if err != nil {
		return err
	}
	defer journal.Close()

	if *metricsAddr != "" {
		msrv, maddr, err := obs.ServeWith(*metricsAddr, obs.HandlerOpts{
			Audit:  journal,
			Health: journal.Health,
		})
		if err != nil {
			return err
		}
		defer msrv.Close()
		logger.Info("metrics listening", "url", fmt.Sprintf("http://%s/metrics", maddr))
	}

	kdc, err := kerberos.NewKDC(*realm, nil)
	if err != nil {
		return err
	}
	if *passwd != "" {
		n, err := loadPasswords(kdc, *passwd)
		if err != nil {
			return err
		}
		logger.Info("provisioned principals", "count", n, "file", *passwd)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := transport.NewTCPServerWorkers(l, svc.NewKDCService(kdc).Mux(), *rpcWorkers)
	if *faultSpec != "" {
		inj, err := faultpoint.Parse(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		srv.SetInjector(inj)
		logger.Warn("fault injection active", "spec", *faultSpec, "seed", *faultSeed)
	}
	logger.Info("kdc listening", "realm", *realm, "addr", srv.Addr().String(), "tgs", kdc.TGS().String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	return srv.Close()
}

func loadPasswords(kdc *kerberos.KDC, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, password, ok := strings.Cut(line, ":")
		if !ok {
			return n, fmt.Errorf("malformed line %q", line)
		}
		id, err := principal.Parse(strings.TrimSpace(name))
		if err != nil {
			return n, err
		}
		if _, err := kdc.RegisterWithPassword(id, strings.TrimSpace(password)); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}
