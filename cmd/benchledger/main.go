// Command benchledger measures the durability hot path and emits a
// machine-readable report.
//
// The single-threaded section carries forward the PR-5 claim — the cost
// of routing every accounting mutation through the write-ahead log, as
// transfer latency on one bank in three configurations (in-memory,
// fsync=off, fsync=always).
//
// The group-commit section measures the PR-9 claim: with concurrent
// committers on an fsync=always ledger, commit-cohort batching (one
// leader fsyncs the whole batch) must improve throughput at least 5x
// over one fsync per append, both as raw ledger appends and as striped
// bank transfers.
//
// With -loadgen and -loadgen-baseline, an open-loop loadgen report is
// embedded and compared per-op against a baseline run (BENCH_PR7.json).
//
//	benchledger -o BENCH_PR9.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/ledger"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
)

type report struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"numCPU"`

	TransferIters      int     `json:"transferIterations"`
	FsyncAlwaysIters   int     `json:"fsyncAlwaysIterations"`
	InMemoryNsPerOp    float64 `json:"inMemoryNsPerOp"`
	WALOffNsPerOp      float64 `json:"walOffNsPerOp"`
	WALAlwaysNsPerOp   float64 `json:"walAlwaysNsPerOp"`
	WALOffOverhead     float64 `json:"walOffOverhead"`
	WALAlwaysOverhead  float64 `json:"walAlwaysOverhead"`
	WALOffWithinBudget bool    `json:"walOffWithin2x"`

	GroupCommitAppends   *groupCommitSection `json:"groupCommitAppends"`
	GroupCommitTransfers *groupCommitSection `json:"groupCommitTransfers"`

	Loadgen *loadgenCompare `json:"loadgen,omitempty"`
}

// groupCommitSection compares fsync=always throughput with concurrent
// committers: one fsync per append (the baseline) vs commit-cohort
// batching.
type groupCommitSection struct {
	Committers           int     `json:"committers"`
	OpsPerCommitter      int     `json:"opsPerCommitter"`
	PerAppendFsyncNsOp   float64 `json:"perAppendFsyncNsPerOp"`
	GroupCommitNsOp      float64 `json:"groupCommitNsPerOp"`
	PerAppendFsyncPerSec float64 `json:"perAppendFsyncOpsPerSec"`
	GroupCommitPerSec    float64 `json:"groupCommitOpsPerSec"`
	Speedup              float64 `json:"speedup"`
	SpeedupAtLeast5x     bool    `json:"speedupAtLeast5x"`
}

// loadgenCompare embeds a per-op p99 comparison of one loadgen report
// against a baseline report.
type loadgenCompare struct {
	Report   string              `json:"report"`
	Baseline string              `json:"baseline"`
	Ops      map[string]opDeltas `json:"ops"`
}

type opDeltas struct {
	P99Ns         float64 `json:"p99Ns"`
	BaselineP99Ns float64 `json:"baselineP99Ns"`
	// Ratio is current/baseline: < 1 means this tree is faster.
	Ratio float64 `json:"ratio"`
}

const (
	benchRealm = "BENCH.ORG"
	// iters is sized so the buffered modes run long enough to measure;
	// fsync=always pays a real disk flush per transfer and uses fewer.
	iters       = 20_000
	alwaysIters = 1_000

	// The group-commit matrix: committers is the acceptance floor for
	// the PR-9 claim (>= 8 concurrent committers, >= 5x).
	committers   = 8
	opsPerWorker = 250
)

func main() {
	out := flag.String("o", "BENCH_PR9.json", "output file (- for stdout)")
	loadgenPath := flag.String("loadgen", "", "loadgen report to embed (optional)")
	loadgenBase := flag.String("loadgen-baseline", "", "baseline loadgen report to compare against (optional)")
	flag.Parse()
	if err := run(*out, *loadgenPath, *loadgenBase); err != nil {
		log.Fatal(err)
	}
}

func run(out, loadgenPath, loadgenBase string) error {
	r := report{
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		NumCPU:           runtime.NumCPU(),
		TransferIters:    iters,
		FsyncAlwaysIters: alwaysIters,
	}

	var err error
	if r.InMemoryNsPerOp, err = measure(nil, iters); err != nil {
		return err
	}
	off := ledger.FsyncOff
	if r.WALOffNsPerOp, err = measure(&off, iters); err != nil {
		return err
	}
	always := ledger.FsyncAlways
	if r.WALAlwaysNsPerOp, err = measure(&always, alwaysIters); err != nil {
		return err
	}
	r.WALOffOverhead = r.WALOffNsPerOp / r.InMemoryNsPerOp
	r.WALAlwaysOverhead = r.WALAlwaysNsPerOp / r.InMemoryNsPerOp
	r.WALOffWithinBudget = r.WALOffOverhead <= 2.0

	if r.GroupCommitAppends, err = groupSection(measureAppends); err != nil {
		return err
	}
	if r.GroupCommitTransfers, err = groupSection(measureTransfers); err != nil {
		return err
	}

	if loadgenPath != "" && loadgenBase != "" {
		if r.Loadgen, err = compareLoadgen(loadgenPath, loadgenBase); err != nil {
			return err
		}
	}

	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("in-memory %.0f ns/op, wal-off %.0f ns/op (%.2fx), wal-always %.0f ns/op (%.1fx)\n",
		r.InMemoryNsPerOp, r.WALOffNsPerOp, r.WALOffOverhead,
		r.WALAlwaysNsPerOp, r.WALAlwaysOverhead)
	fmt.Printf("group commit, %d committers: appends %.1fx, transfers %.1fx -> %s\n",
		committers, r.GroupCommitAppends.Speedup, r.GroupCommitTransfers.Speedup, out)
	return nil
}

// groupSection runs one workload with group commit off, then on, and
// packages the comparison. Each mode takes the best of three runs —
// the minimum is the least-noise estimate when the dominant noise
// source (disk flush latency) only ever adds time.
func groupSection(workload func(group bool) (float64, error)) (*groupCommitSection, error) {
	s := &groupCommitSection{Committers: committers, OpsPerCommitter: opsPerWorker}
	best := func(group bool) (float64, error) {
		min := 0.0
		for i := 0; i < 3; i++ {
			ns, err := workload(group)
			if err != nil {
				return 0, err
			}
			if min == 0 || ns < min {
				min = ns
			}
		}
		return min, nil
	}
	var err error
	if s.PerAppendFsyncNsOp, err = best(false); err != nil {
		return nil, err
	}
	if s.GroupCommitNsOp, err = best(true); err != nil {
		return nil, err
	}
	s.PerAppendFsyncPerSec = 1e9 / s.PerAppendFsyncNsOp
	s.GroupCommitPerSec = 1e9 / s.GroupCommitNsOp
	s.Speedup = s.PerAppendFsyncNsOp / s.GroupCommitNsOp
	s.SpeedupAtLeast5x = s.Speedup >= 5.0
	return s, nil
}

// measureAppends times committers goroutines each appending
// opsPerWorker records to one fsync=always ledger — the raw group
// commit path, no accounting above it.
func measureAppends(group bool) (nsPerOp float64, err error) {
	dir, err := os.MkdirTemp("", "benchledger-gc-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	l, _, err := ledger.Open(ledger.Options{
		Dir:           dir,
		Fsync:         ledger.FsyncAlways,
		NoGroupCommit: !group,
	})
	if err != nil {
		return 0, err
	}
	defer l.Close()
	payload := make([]byte, 64)
	for i := 0; i < 32; i++ { // warm up the WAL file
		if _, err := l.Append(payload); err != nil {
			return 0, err
		}
	}
	errs := make(chan error, committers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				if _, err := l.Append(payload); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(elapsed.Nanoseconds()) / float64(committers*opsPerWorker), nil
}

// measureTransfers times committers goroutines each ping-ponging
// transfers on a disjoint account pair of one ledgered bank: striped
// account locks let the commits reach the WAL concurrently, where
// group commit batches their fsyncs.
func measureTransfers(group bool) (nsPerOp float64, err error) {
	alice := principal.New("alice", benchRealm)
	ident, err := pubkey.NewIdentity(principal.New("bank", benchRealm))
	if err != nil {
		return 0, err
	}
	bank := accounting.NewServer(ident, nil, nil)
	dir, err := os.MkdirTemp("", "benchledger-gct-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	if _, err := bank.OpenLedger(ledger.Options{
		Dir:           dir,
		Fsync:         ledger.FsyncAlways,
		NoGroupCommit: !group,
	}); err != nil {
		return 0, err
	}
	defer bank.CloseLedger()
	who := []principal.ID{alice}
	for w := 0; w < committers; w++ {
		for _, acct := range []string{fmt.Sprintf("a%d", w), fmt.Sprintf("b%d", w)} {
			if err := bank.CreateAccount(acct, alice); err != nil {
				return 0, err
			}
			if err := bank.Mint(acct, "dollars", opsPerWorker+1); err != nil {
				return 0, err
			}
		}
	}
	errs := make(chan error, committers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, b := fmt.Sprintf("a%d", w), fmt.Sprintf("b%d", w)
			for i := 0; i < opsPerWorker; i++ {
				from, to := a, b
				if i%2 == 1 {
					from, to = to, from
				}
				if err := bank.Transfer(from, to, "dollars", 1, who); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(elapsed.Nanoseconds()) / float64(committers*opsPerWorker), nil
}

// compareLoadgen reads two loadgen reports and compares per-op p99.
func compareLoadgen(path, basePath string) (*loadgenCompare, error) {
	cur, err := readLoadgenOps(path)
	if err != nil {
		return nil, err
	}
	base, err := readLoadgenOps(basePath)
	if err != nil {
		return nil, err
	}
	cmp := &loadgenCompare{Report: path, Baseline: basePath, Ops: map[string]opDeltas{}}
	for name, p99 := range cur {
		d := opDeltas{P99Ns: p99}
		if b, ok := base[name]; ok && b > 0 {
			d.BaselineP99Ns = b
			d.Ratio = p99 / b
		}
		cmp.Ops[name] = d
	}
	return cmp, nil
}

func readLoadgenOps(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Ops map[string]struct {
			P99Ns float64 `json:"p99Ns"`
		} `json:"ops"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(doc.Ops))
	for name, op := range doc.Ops {
		out[name] = op.P99Ns
	}
	return out, nil
}

// measure times n ping-pong transfers between two accounts on one
// bank. mode nil runs without a ledger; otherwise a fresh ledger
// directory is attached with the given fsync mode.
func measure(mode *ledger.FsyncMode, n int) (nsPerOp float64, err error) {
	alice := principal.New("alice", benchRealm)
	ident, err := pubkey.NewIdentity(principal.New("bank", benchRealm))
	if err != nil {
		return 0, err
	}
	bank := accounting.NewServer(ident, nil, nil)
	if mode != nil {
		dir, err := os.MkdirTemp("", "benchledger-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		if _, err := bank.OpenLedger(ledger.Options{Dir: dir, Fsync: *mode}); err != nil {
			return 0, err
		}
		defer bank.CloseLedger()
	}
	for _, acct := range []string{"a", "b"} {
		if err := bank.CreateAccount(acct, alice); err != nil {
			return 0, err
		}
		if err := bank.Mint(acct, "dollars", int64(n)+1); err != nil {
			return 0, err
		}
	}
	who := []principal.ID{alice}

	// Warm up maps and the WAL file before the timed run.
	for i := 0; i < 100; i++ {
		if err := bank.Transfer("a", "b", "dollars", 1, who); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		from, to := "a", "b"
		if i%2 == 1 {
			from, to = to, from
		}
		if err := bank.Transfer(from, to, "dollars", 1, who); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), nil
}
