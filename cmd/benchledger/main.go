// Command benchledger measures the PR-5 durability claim and emits a
// machine-readable report: the cost of routing every accounting
// mutation through the write-ahead log, as transfer latency on one
// bank in three configurations —
//
//   - in-memory (no ledger attached): the pre-PR-5 baseline
//
//   - WAL with fsync=off (buffered appends): the hot-path budget is
//     within 2x of the in-memory baseline
//
//   - WAL with fsync=always (fsync per append): full durability, paid
//     for in disk-flush latency
//
//     benchledger -o BENCH_PR5.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/ledger"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
)

type report struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"numCPU"`

	TransferIters      int     `json:"transferIterations"`
	FsyncAlwaysIters   int     `json:"fsyncAlwaysIterations"`
	InMemoryNsPerOp    float64 `json:"inMemoryNsPerOp"`
	WALOffNsPerOp      float64 `json:"walOffNsPerOp"`
	WALAlwaysNsPerOp   float64 `json:"walAlwaysNsPerOp"`
	WALOffOverhead     float64 `json:"walOffOverhead"`
	WALAlwaysOverhead  float64 `json:"walAlwaysOverhead"`
	WALOffWithinBudget bool    `json:"walOffWithin2x"`
}

const (
	benchRealm = "BENCH.ORG"
	// iters is sized so the buffered modes run long enough to measure;
	// fsync=always pays a real disk flush per transfer and uses fewer.
	iters       = 20_000
	alwaysIters = 1_000
)

func main() {
	out := flag.String("o", "BENCH_PR5.json", "output file (- for stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		log.Fatal(err)
	}
}

func run(out string) error {
	r := report{
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		NumCPU:           runtime.NumCPU(),
		TransferIters:    iters,
		FsyncAlwaysIters: alwaysIters,
	}

	var err error
	if r.InMemoryNsPerOp, err = measure(nil, iters); err != nil {
		return err
	}
	off := ledger.FsyncOff
	if r.WALOffNsPerOp, err = measure(&off, iters); err != nil {
		return err
	}
	always := ledger.FsyncAlways
	if r.WALAlwaysNsPerOp, err = measure(&always, alwaysIters); err != nil {
		return err
	}
	r.WALOffOverhead = r.WALOffNsPerOp / r.InMemoryNsPerOp
	r.WALAlwaysOverhead = r.WALAlwaysNsPerOp / r.InMemoryNsPerOp
	r.WALOffWithinBudget = r.WALOffOverhead <= 2.0

	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("in-memory %.0f ns/op, wal-off %.0f ns/op (%.2fx), wal-always %.0f ns/op (%.1fx) -> %s\n",
		r.InMemoryNsPerOp, r.WALOffNsPerOp, r.WALOffOverhead,
		r.WALAlwaysNsPerOp, r.WALAlwaysOverhead, out)
	return nil
}

// measure times n ping-pong transfers between two accounts on one
// bank. mode nil runs without a ledger; otherwise a fresh ledger
// directory is attached with the given fsync mode.
func measure(mode *ledger.FsyncMode, n int) (nsPerOp float64, err error) {
	alice := principal.New("alice", benchRealm)
	ident, err := pubkey.NewIdentity(principal.New("bank", benchRealm))
	if err != nil {
		return 0, err
	}
	bank := accounting.NewServer(ident, nil, nil)
	if mode != nil {
		dir, err := os.MkdirTemp("", "benchledger-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		if _, err := bank.OpenLedger(ledger.Options{Dir: dir, Fsync: *mode}); err != nil {
			return 0, err
		}
		defer bank.CloseLedger()
	}
	for _, acct := range []string{"a", "b"} {
		if err := bank.CreateAccount(acct, alice); err != nil {
			return 0, err
		}
		if err := bank.Mint(acct, "dollars", int64(n)+1); err != nil {
			return 0, err
		}
	}
	who := []principal.ID{alice}

	// Warm up maps and the WAL file before the timed run.
	for i := 0; i < 100; i++ {
		if err := bank.Transfer("a", "b", "dollars", 1, who); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		from, to := "a", "b"
		if i%2 == 1 {
			from, to = to, from
		}
		if err := bank.Transfer(from, to, "dollars", 1, who); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), nil
}
