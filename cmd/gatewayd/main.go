// Command gatewayd runs the HTTP edge gateway: bearer tokens in,
// restricted proxy chains out.
//
// It terminates plain HTTP+JSON for clients that cannot speak the
// native credential protocol, maps tokens (and impersonated external
// subjects) onto principals via a declarative mapping file, obtains
// restricted proxies through the authorization and group servers,
// caches them with background renewal, and forwards operations to the
// end-server and the bank over the multiplexed RPC transport:
//
//	gatewayd -state ./state -listen :8095 -mapping mapping.json \
//	  -authz-server :8090 -group-server :8091 -acct-server :8092 \
//	  -end-server :8093 -end-server-id files@EXAMPLE.ORG -bank-id bank@EXAMPLE.ORG
//
// The operator guide and the full HTTP API reference live in
// GATEWAY.md. With -metrics-addr set, a side HTTP listener serves
// /metrics, /healthz, /traces, /audit, and /debug/pprof (see
// OBSERVABILITY.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"proxykit/internal/audit"
	"proxykit/internal/faultpoint"
	"proxykit/internal/gateway"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/statefile"
	"proxykit/internal/transport"
)

func main() {
	if err := run(); err != nil {
		slog.Error("gatewayd failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var opts gateway.DaemonOptions
	opts.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := opts.Log.Setup(nil)
	if err != nil {
		return err
	}
	obsCleanup, err := opts.Trace.Apply()
	if err != nil {
		return err
	}
	defer obsCleanup()
	if opts.Mapping == "" {
		return fmt.Errorf("-mapping is required (see GATEWAY.md)")
	}
	mapping, err := gateway.LoadMapping(opts.Mapping)
	if err != nil {
		return err
	}
	endID, err := principal.Parse(opts.EndServerID)
	if err != nil {
		return fmt.Errorf("-end-server-id: %w", err)
	}
	bankID, err := principal.Parse(opts.BankID)
	if err != nil {
		return fmt.Errorf("-bank-id: %w", err)
	}

	journal, err := audit.New(audit.Options{Path: opts.AuditFile, Logger: logger})
	if err != nil {
		return err
	}
	defer journal.Close()

	if opts.MetricsAddr != "" {
		msrv, maddr, err := obs.ServeWith(opts.MetricsAddr, obs.HandlerOpts{
			Audit:  journal,
			Health: journal.Health,
		})
		if err != nil {
			return err
		}
		defer msrv.Close()
		logger.Info("metrics listening", "url", fmt.Sprintf("http://%s/metrics", maddr))
	}

	ident, err := statefile.LoadOrCreateIdentity(opts.State, principal.New(opts.Name, opts.Realm))
	if err != nil {
		return err
	}

	var inj *faultpoint.Injector
	if opts.FaultSpec != "" {
		inj, err = faultpoint.Parse(opts.FaultSpec, opts.FaultSeed)
		if err != nil {
			return err
		}
		logger.Warn("fault injection active", "spec", opts.FaultSpec, "seed", opts.FaultSeed)
	}
	dial := func(addr string) (*transport.TCPClient, error) {
		c, err := transport.DialTCPPool(addr, opts.DialTimeout, opts.RPCPool)
		if err != nil {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		if inj != nil {
			c.SetInjector(inj)
		}
		return c, nil
	}
	authzC, err := dial(opts.AuthzAddr)
	if err != nil {
		return err
	}
	defer authzC.Close()
	acctC, err := dial(opts.AcctAddr)
	if err != nil {
		return err
	}
	defer acctC.Close()
	endC, err := dial(opts.EndAddr)
	if err != nil {
		return err
	}
	defer endC.Close()
	var groupC transport.Client
	if opts.GroupAddr != "" {
		gc, err := dial(opts.GroupAddr)
		if err != nil {
			return err
		}
		defer gc.Close()
		groupC = gc
	}

	g, err := gateway.New(gateway.Options{
		StateDir:      opts.State,
		ID:            ident.ID,
		Mapping:       mapping,
		AuthzClient:   authzC,
		GroupClient:   groupC,
		AcctClient:    acctC,
		EndClient:     endC,
		EndServerID:   endID,
		BankID:        bankID,
		ProxyLifetime: opts.ProxyLifetime,
		RenewWithin:   opts.RenewWithin,
		RenewInterval: opts.RenewInterval,
		Journal:       journal,
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	if opts.RenewInterval > 0 {
		g.Start()
	}
	defer g.Close()

	l, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: g.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			logger.Error("http server failed", "err", err)
		}
	}()
	logger.Info("gateway listening", "server", ident.ID.String(),
		"addr", l.Addr().String(), "tokens", len(mapping.Tokens))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
