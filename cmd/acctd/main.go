// Command acctd runs an accounting server (§4) over TCP.
//
// Accounts are provisioned from a JSON file:
//
//	[
//	  {"name": "carol", "owner": "carol@EXAMPLE.ORG",
//	   "mint": {"dollars": 1000, "pages": 50}}
//	]
//
//	acctd -state ./state -name bank1 -listen :8092 -accounts accounts.json
//
// With -metrics-addr set, a side HTTP listener serves /metrics
// (Prometheus text; ?format=json for JSON), /healthz, /traces (recent
// RPC spans), /audit (the audit journal tail), and /debug/pprof. See
// OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/audit"
	"proxykit/internal/faultpoint"
	"proxykit/internal/ledger"
	"proxykit/internal/logging"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/repl"
	"proxykit/internal/statefile"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

// accountJSON is the accounts-file schema.
type accountJSON struct {
	Name  string           `json:"name"`
	Owner string           `json:"owner"`
	Mint  map[string]int64 `json:"mint"`
}

func main() {
	if err := run(); err != nil {
		slog.Error("acctd failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		state       = flag.String("state", "./state", "shared state directory")
		name        = flag.String("name", "bank", "server principal name")
		realm       = flag.String("realm", "EXAMPLE.ORG", "realm name")
		listen      = flag.String("listen", "127.0.0.1:8092", "listen address")
		accounts    = flag.String("accounts", "", "JSON accounts file")
		metricsAddr = flag.String("metrics-addr", "", "observability HTTP listen address serving /metrics, /healthz, /traces, /audit, and /debug/pprof (disabled when empty)")
		auditFile   = flag.String("audit-file", "", "hash-chained audit journal path (JSONL, append-only); empty keeps the journal in memory only")
		faultSpec   = flag.String("fault-spec", "", "server-side fault injection, e.g. 'acct.*:drop=0.1,dup=0.05;acct.balance:delay=50ms@0.2' (chaos testing; see internal/faultpoint)")
		faultSeed   = flag.Int64("fault-seed", 1, "PRNG seed for -fault-spec decisions")
		holdSweep   = flag.Duration("hold-sweep-interval", time.Minute, "how often expired certified-check holds are swept back to their accounts; 0 disables the sweeper")
		rpcWorkers  = flag.Int("rpc-workers", 0, "bound on concurrently handled RPC requests (0 = default pool size)")
		ledgerDir   = flag.String("ledger-dir", "", "durable ledger directory (WAL + snapshots); empty keeps accounting state in memory only")
		fsyncMode   = flag.String("fsync", "always", "WAL durability: always (fsync per append), interval (periodic fsync), off (buffered)")
		groupCommit = flag.Bool("group-commit", true, "batch concurrent fsync=always appends into commit cohorts (one fsync per batch)")
		snapEvery   = flag.Duration("snapshot-interval", time.Minute, "how often the ledger snapshots full state and truncates the WAL; 0 disables the background snapshotter")
		replFlags   repl.Flags
		logOpts     logging.Options
		traceOpts   obs.TraceOptions
	)
	replFlags.Register(flag.CommandLine)
	logOpts.RegisterFlags(flag.CommandLine)
	traceOpts.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logOpts.Setup(nil)
	if err != nil {
		return err
	}

	obsCleanup, err := traceOpts.Apply()
	if err != nil {
		return err
	}
	defer obsCleanup()

	journal, err := audit.New(audit.Options{Path: *auditFile, Logger: logger})
	if err != nil {
		return err
	}
	defer journal.Close()

	ident, err := statefile.LoadOrCreateIdentity(*state, principal.New(*name, *realm))
	if err != nil {
		return err
	}
	resolve := statefile.DynamicResolver(*state)
	srv := accounting.NewServer(ident, resolve, nil)
	if *ledgerDir != "" {
		mode, err := ledger.ParseFsyncMode(*fsyncMode)
		if err != nil {
			return err
		}
		rec, err := srv.OpenLedger(ledger.Options{Dir: *ledgerDir, Fsync: mode, NoGroupCommit: !*groupCommit, Logger: logger})
		if err != nil {
			return err
		}
		defer srv.CloseLedger()
		logger.Info("ledger open", "dir", *ledgerDir, "fsync", mode.String(),
			"replayed", len(rec.Entries), "snapshotSeq", rec.SnapshotSeq, "tornTail", rec.TornTail)
		if *snapEvery > 0 {
			stopSnap := srv.StartSnapshotter(*snapEvery)
			defer stopSnap()
		}
	}
	srv.SetJournal(journal)

	mux := svc.NewAcctService(srv, resolve, nil).Mux()
	replNode, err := replFlags.Start(srv, *ledgerDir, mux, logger)
	if err != nil {
		return err
	}
	if replNode != nil {
		defer replNode.Close()
	}

	if *metricsAddr != "" {
		msrv, maddr, err := obs.ServeWith(*metricsAddr, obs.HandlerOpts{
			Audit: journal,
			Health: func() map[string]any {
				h := journal.Health()
				if lg := srv.Ledger(); lg != nil {
					for k, v := range lg.Health() {
						h[k] = v
					}
				}
				if replNode != nil {
					for k, v := range replNode.Health() {
						h[k] = v
					}
				}
				return h
			},
		})
		if err != nil {
			return err
		}
		defer msrv.Close()
		logger.Info("metrics listening", "url", fmt.Sprintf("http://%s/metrics", maddr))
	}

	if *accounts != "" {
		if replFlags.Standby {
			// A standby's books come from the primary's WAL; local
			// provisioning would be refused by the commit gate anyway.
			logger.Info("standby: skipping account provisioning", "file", *accounts)
		} else {
			n, err := loadAccounts(srv, *accounts)
			if err != nil {
				return err
			}
			logger.Info("provisioned accounts", "count", n, "file", *accounts)
		}
	}

	if *holdSweep > 0 && !replFlags.Standby {
		stop := srv.StartHoldSweeper(*holdSweep)
		defer stop()
		logger.Info("hold sweeper running", "interval", *holdSweep)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	tcp := transport.NewTCPServerWorkers(l, mux, *rpcWorkers)
	if *faultSpec != "" {
		inj, err := faultpoint.Parse(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		tcp.SetInjector(inj)
		logger.Warn("fault injection active", "spec", *faultSpec, "seed", *faultSeed)
	}
	logger.Info("accounting server listening", "server", ident.ID.String(), "addr", tcp.Addr().String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return tcp.Close()
}

func loadAccounts(srv *accounting.Server, path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var as []accountJSON
	if err := json.Unmarshal(raw, &as); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	for _, a := range as {
		owner, err := principal.Parse(a.Owner)
		if err != nil {
			return 0, err
		}
		if err := srv.CreateAccount(a.Name, owner); err != nil {
			// Provisioning is idempotent across restarts: an account
			// recovered from the ledger is left alone — re-minting its
			// opening balance on every restart would print money.
			if errors.Is(err, accounting.ErrAccountExists) {
				continue
			}
			return 0, err
		}
		for currency, amount := range a.Mint {
			if err := srv.Mint(a.Name, currency, amount); err != nil {
				return 0, err
			}
		}
	}
	return len(as), nil
}
