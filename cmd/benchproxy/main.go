// Command benchproxy runs the full experiment suite of DESIGN.md /
// EXPERIMENTS.md — one experiment per figure of the paper plus the
// related-work baselines — and prints each result table.
//
//	benchproxy            # run everything
//	benchproxy -run E4,E8 # run a subset
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"proxykit/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (default: all)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	fmt.Println("proxykit experiment suite")
	fmt.Println("reproducing: Neuman, \"Proxy-Based Authorization and Accounting")
	fmt.Println("for Distributed Systems\", ICDCS 1993 (see EXPERIMENTS.md)")
	fmt.Println()

	start := time.Now()
	failures := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		t0 := time.Now()
		table, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: FAILED: %v\n\n", r.ID, err)
			failures++
			continue
		}
		fmt.Print(table.Render())
		fmt.Printf("   (%s)\n\n", time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("suite completed in %s\n", time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}
