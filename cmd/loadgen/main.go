// Command loadgen is the standing measurement harness (ROADMAP item
// 3): an open-loop load generator that stands up a full in-process
// proxykit topology — group, authz, end-server, and accounting daemons
// over real TCP plus the HTTP gateway — provisions simulated
// principals, and offers a mixed authorize/transfer/deposit/gateway
// workload at a fixed arrival rate. It records complete client-side
// latency distributions per operation, judges the run against -slo
// latency objectives (the same spec grammar every daemon's -slo flag
// takes; see OBSERVABILITY.md), and writes the report as JSON:
//
//	loadgen -rate 200 -duration 10s -principals 32 \
//	  -mix 'authorize=0.4,transfer=0.3,deposit=0.2,gateway=0.1' \
//	  -slo 'end.request<50ms@p99,acct.transfer<25ms@p99' \
//	  -o BENCH_PR7.json
//
// Open-loop means arrivals follow the clock, not completions, so
// server slowdowns surface as latency rather than a silently reduced
// offered rate (no coordinated omission).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"proxykit/internal/loadgen"
	"proxykit/internal/logging"
)

func main() {
	if err := run(); err != nil {
		slog.Error("loadgen failed", "err", err)
		os.Exit(1)
	}
}

// defaultSLO arms an objective for each workload op's underlying
// method: the three RPC methods and the gateway HTTP route.
const defaultSLO = "end.request<50ms@p99,acct.transfer<25ms@p99,acct.deposit-check<50ms@p99,POST /v1/authorize<250ms@p99"

func run() error {
	var (
		rate       = flag.Float64("rate", 200, "offered arrival rate, operations per second (open loop)")
		duration   = flag.Duration("duration", 10*time.Second, "how long to generate arrivals")
		principals = flag.Int("principals", 32, "simulated principals (identities, accounts, proxies, tokens)")
		mixSpec    = flag.String("mix", "authorize=0.4,transfer=0.3,deposit=0.2,gateway=0.1", "relative workload mix, name=weight pairs")
		seed       = flag.Int64("seed", 1, "PRNG seed for op/principal selection (reproducible workloads)")
		sloSpec    = flag.String("slo", defaultSLO, "latency objectives judged server-side, e.g. 'end.request<5ms@p99' (see OBSERVABILITY.md)")
		out        = flag.String("o", "BENCH_PR7.json", "output report path (- for stdout)")
		logOpts    logging.Options
	)
	logOpts.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logOpts.Setup(nil)
	if err != nil {
		return err
	}

	mix, err := loadgen.ParseMix(*mixSpec)
	if err != nil {
		return err
	}

	logger.Info("provisioning topology", "principals", *principals)
	topo, err := loadgen.NewTopology(*principals)
	if err != nil {
		return err
	}
	defer topo.Close()
	logger.Info("topology up", "gateway", topo.GatewayURL, "state", topo.StateDir)

	logger.Info("generating load", "rate", *rate, "duration", *duration, "mix", *mixSpec, "seed", *seed)
	rep, err := loadgen.Run(loadgen.Config{
		Rate:       *rate,
		Duration:   *duration,
		Principals: *principals,
		Mix:        mix,
		Seed:       *seed,
		SLO:        *sloSpec,
	}, topo.Ops())
	if err != nil {
		return err
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(raw)
	} else {
		err = os.WriteFile(*out, raw, 0o644)
	}
	if err != nil {
		return err
	}

	for name, op := range rep.Ops {
		logger.Info("op distribution", "op", name, "count", op.Count, "errors", op.Errors,
			"p50", time.Duration(op.P50Ns), "p99", time.Duration(op.P99Ns), "p99.9", time.Duration(op.P999Ns))
	}
	blown := 0
	for _, o := range rep.SLO {
		if !o.Compliant {
			blown++
			logger.Warn("objective over budget", "method", o.Method, "target", o.TargetText,
				"breaches", o.Breaches, "total", o.Total, "exemplars", o.ExemplarTraceIDs)
		}
	}
	logger.Info("run complete", "offered", rep.Offered, "completed", rep.Completed,
		"achievedRate", fmt.Sprintf("%.1f/s", rep.AchievedRatePerSec), "objectivesBlown", blown, "report", *out)
	return nil
}
