package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"strings"
	"time"

	"proxykit/internal/audit"
)

// cmdAudit dispatches the audit subcommands: tail and query read a
// daemon's /audit endpoint; verify re-walks a journal's hash chain and
// exits non-zero on any break.
func cmdAudit(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: proxyctl audit <tail|query|verify> [flags]")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "tail":
		return cmdAuditTail(rest)
	case "query":
		return cmdAuditQuery(rest)
	case "verify":
		return cmdAuditVerify(rest)
	default:
		return fmt.Errorf("audit: unknown subcommand %q (want tail, query, or verify)", sub)
	}
}

// auditPage is the /audit response document.
type auditPage struct {
	Total    uint64         `json:"total"`
	LastHash string         `json:"lastHash"`
	Oldest   uint64         `json:"oldest"`
	Cursor   uint64         `json:"cursor"`
	Records  []audit.Record `json:"records"`
}

// fetchAudit reads one /audit page from a daemon's metrics listener.
func fetchAudit(addr string, since uint64, limit int) (*auditPage, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	url := fmt.Sprintf("http://%s/audit?since=%d", addr, since)
	if limit > 0 {
		url += fmt.Sprintf("&limit=%d", limit)
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("audit: %s returned %s", addr, resp.Status)
	}
	var page auditPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, fmt.Errorf("audit: decode %s: %w", addr, err)
	}
	return &page, nil
}

func cmdAuditTail(args []string) error {
	fs := flag.NewFlagSet("audit tail", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "daemon metrics address (host:port of its -metrics-addr)")
	since := fs.Uint64("since", 0, "return records with seq greater than this cursor")
	limit := fs.Int("limit", 0, "maximum records to return (0 = all retained)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	page, err := fetchAudit(*addr, *since, *limit)
	if err != nil {
		return err
	}
	for _, r := range page.Records {
		printAuditRecord(r)
	}
	fmt.Printf("(%d of %d records, cursor=%d, lastHash=%s)\n",
		len(page.Records), page.Total, page.Cursor, short(page.LastHash))
	return nil
}

func cmdAuditQuery(args []string) error {
	fs := flag.NewFlagSet("audit query", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "daemon metrics address (host:port of its -metrics-addr)")
	since := fs.Uint64("since", 0, "return records with seq greater than this cursor")
	kind := fs.String("kind", "", "only records of this kind (e.g. acct.deposit)")
	trace := fs.String("trace", "", "only records with this trace ID")
	outcome := fs.String("outcome", "", "only records with this outcome: granted or denied")
	if err := fs.Parse(args); err != nil {
		return err
	}
	page, err := fetchAudit(*addr, *since, 0)
	if err != nil {
		return err
	}
	shown := 0
	for _, r := range page.Records {
		if *kind != "" && r.Kind != *kind {
			continue
		}
		if *trace != "" && r.TraceID != *trace {
			continue
		}
		if *outcome != "" && !strings.EqualFold(r.Outcome.String(), *outcome) {
			continue
		}
		printAuditRecord(r)
		shown++
	}
	fmt.Printf("(%d of %d records matched, cursor=%d)\n", shown, page.Total, page.Cursor)
	return nil
}

func cmdAuditVerify(args []string) error {
	fs := flag.NewFlagSet("audit verify", flag.ExitOnError)
	file := fs.String("file", "", "journal file (JSONL) to verify")
	addr := fs.String("addr", "", "daemon metrics address; verifies the served tail instead of a file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *file != "":
		n, err := audit.VerifyFile(*file)
		if err != nil {
			return fmt.Errorf("audit verify: %s: chain broken after %d good records: %w", *file, n, err)
		}
		fmt.Printf("%s: chain intact, %d records\n", *file, n)
		return nil
	case *addr != "":
		page, err := fetchAudit(*addr, 0, 0)
		if err != nil {
			return err
		}
		if err := audit.VerifyChain(page.Records); err != nil {
			return fmt.Errorf("audit verify: %s: %w", *addr, err)
		}
		fmt.Printf("%s: chain intact, %d records in tail (%d total, lastHash=%s)\n",
			*addr, len(page.Records), page.Total, short(page.LastHash))
		return nil
	default:
		return fmt.Errorf("audit verify: -file or -addr is required")
	}
}

// printAuditRecord renders one record compactly: seq, hash prefix, and
// the record's own string form.
func printAuditRecord(r audit.Record) {
	fmt.Printf("#%d %s %s\n", r.Seq, short(r.Hash), r.String())
}

// short abbreviates a hex hash for display.
func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	if h == "" {
		return "-"
	}
	return h
}
