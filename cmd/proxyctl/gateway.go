package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"proxykit/internal/gateway"
)

// cmdGateway inspects a running gatewayd over its HTTP API: the
// caller's session, all sessions plus the redacted token↔principal
// map, and the proxy cache. The bearer token is read from -token-file
// or the GATEWAY_TOKEN environment variable — never from argv, where
// it would leak into process listings and shell history.
func cmdGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8095", "gatewayd base URL")
	tokenFile := fs.String("token-file", "", "file holding the bearer token (default: $GATEWAY_TOKEN)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: proxyctl gateway [flags] session|sessions|proxies

  session    describe the token's own session
  sessions   list all sessions and the token->principal map (admin token)
  proxies    list cached proxies and renewal state (admin token)`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("gateway: exactly one of session|sessions|proxies required")
	}
	token := os.Getenv("GATEWAY_TOKEN")
	if *tokenFile != "" {
		raw, err := os.ReadFile(*tokenFile)
		if err != nil {
			return err
		}
		token = strings.TrimSpace(string(raw))
	}
	if token == "" {
		return fmt.Errorf("gateway: no token (-token-file or GATEWAY_TOKEN)")
	}

	get := func(path string, v any) error {
		req, err := http.NewRequest(http.MethodGet, strings.TrimSuffix(*url, "/")+path, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Authorization", "Bearer "+token)
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var apiErr struct {
				Error   string `json:"error"`
				TraceID string `json:"traceId"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&apiErr)
			return fmt.Errorf("gateway: %s: %s (%s, trace %s)", path, resp.Status, apiErr.Error, apiErr.TraceID)
		}
		return json.NewDecoder(resp.Body).Decode(v)
	}

	switch fs.Arg(0) {
	case "session":
		var s gateway.SessionInfo
		if err := get("/v1/session", &s); err != nil {
			return err
		}
		fmt.Printf("subject:      %s\nprincipal:    %s\ntokenRef:     %s\nimpersonated: %v\nadmin:        %v\ngroups:       %s\ncreated:      %s\nrequests:     %d\n",
			s.Subject, s.Principal, s.TokenRef, s.Impersonated, s.Admin,
			strings.Join(s.Groups, ","), s.Created.Format(time.RFC3339), s.Requests)
		return nil
	case "sessions":
		var doc struct {
			Sessions []gateway.SessionInfo  `json:"sessions"`
			TokenMap []gateway.TokenMapInfo `json:"tokenMap"`
		}
		if err := get("/v1/sessions", &doc); err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "SUBJECT\tPRINCIPAL\tTOKEN\tIMP\tGROUPS\tREQS")
		for _, s := range doc.Sessions {
			fmt.Fprintf(w, "%s\t%s\t%s\t%v\t%s\t%d\n",
				s.Subject, s.Principal, s.TokenRef, s.Impersonated, strings.Join(s.Groups, ","), s.Requests)
		}
		fmt.Fprintln(w, "\nTOKEN\tSUBJECT\tPRINCIPAL\tIMPERSONATE\tADMIN")
		sort.Slice(doc.TokenMap, func(i, j int) bool { return doc.TokenMap[i].Subject < doc.TokenMap[j].Subject })
		for _, t := range doc.TokenMap {
			fmt.Fprintf(w, "%s\t%s\t%s\t%v\t%v\n", t.TokenRef, t.Subject, t.Principal, t.Impersonate, t.Admin)
		}
		return w.Flush()
	case "proxies":
		var doc struct {
			Proxies []gateway.EntryInfo `json:"proxies"`
		}
		if err := get("/v1/proxies", &doc); err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "KEY\tGRANTOR\tEXPIRES\tRENEWING")
		for _, p := range doc.Proxies {
			fmt.Fprintf(w, "%s\t%s\t%s\t%v\n", p.Key, p.Grantor, p.Expires.Format(time.RFC3339), p.Renewing)
		}
		return w.Flush()
	default:
		fs.Usage()
		return fmt.Errorf("gateway: unknown subcommand %q", fs.Arg(0))
	}
}
