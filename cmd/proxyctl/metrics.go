package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// cmdMetrics scrapes a daemon's -metrics-addr listener and
// pretty-prints its counters, gauges, and histograms. With -raw it
// relays the exposition text untouched (for piping into other tools).
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "daemon metrics address (host:port of its -metrics-addr)")
	match := fs.String("match", "", "only show metrics whose name contains this substring")
	raw := fs.Bool("raw", false, "print the raw Prometheus exposition text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + *addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: %s returned %s", *addr, resp.Status)
	}
	if *raw {
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	fams, err := parseExposition(resp.Body)
	if err != nil {
		return err
	}
	printHealth(os.Stdout, client, *addr)
	return printFamilies(os.Stdout, fams, *match)
}

// printHealth fetches /healthz and prints its fields sorted; failures
// are reported but never fatal (the metrics table still prints).
func printHealth(w io.Writer, client *http.Client, addr string) {
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		fmt.Fprintf(w, "healthz: %v\n\n", err)
		return
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		fmt.Fprintf(w, "healthz: %v\n\n", err)
		return
	}
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, doc[k]))
	}
	fmt.Fprintf(w, "healthz: %s\n\n", strings.Join(parts, " "))
}

// sample is one exposition line.
type sample struct {
	labels string // rendered {k="v"} block, "" when unlabeled
	value  float64
}

// expoFamily is one metric family as scraped.
type expoFamily struct {
	name    string
	typ     string
	samples []sample          // counters/gauges
	hists   map[string]*histo // histograms keyed by non-le label block
	order   []string          // insertion order of hists keys
}

// histo accumulates one histogram child's series.
type histo struct {
	bounds []float64 // upper bounds excluding +Inf, scrape order
	counts []float64 // cumulative counts parallel to bounds
	inf    float64
	sum    float64
	count  float64
}

// parseExposition reads the Prometheus text format produced by the obs
// registry (the subset: HELP/TYPE comments, integer/float samples).
func parseExposition(r io.Reader) (map[string]*expoFamily, error) {
	fams := make(map[string]*expoFamily)
	family := func(name string) *expoFamily {
		f, ok := fams[name]
		if !ok {
			f = &expoFamily{name: name, typ: "untyped", hists: make(map[string]*histo)}
			fams[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				family(fields[2]).typ = fields[3]
			}
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			continue
		}
		value, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: bad sample line %q", line)
		}
		series := line[:idx]
		name, labels := series, ""
		if b := strings.IndexByte(series, '{'); b >= 0 {
			name, labels = series[:b], series[b:]
		}
		// Fold histogram series into their base family.
		base, part := name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && fams[trimmed] != nil && fams[trimmed].typ == "histogram" {
				base, part = trimmed, suffix
				break
			}
		}
		f := family(base)
		if part == "" {
			f.samples = append(f.samples, sample{labels: labels, value: value})
			continue
		}
		key, le := splitLE(labels)
		h, ok := f.hists[key]
		if !ok {
			h = &histo{}
			f.hists[key] = h
			f.order = append(f.order, key)
		}
		switch part {
		case "_sum":
			h.sum = value
		case "_count":
			h.count = value
		case "_bucket":
			if le == "+Inf" {
				h.inf = value
			} else if b, err := strconv.ParseFloat(le, 64); err == nil {
				h.bounds = append(h.bounds, b)
				h.counts = append(h.counts, value)
			}
		}
	}
	return fams, sc.Err()
}

// splitLE removes the le="..." pair from a label block, returning the
// remaining block and the le value.
func splitLE(labels string) (rest, le string) {
	if labels == "" {
		return "", ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, pair := range splitPairs(inner) {
		if v, ok := strings.CutPrefix(pair, `le=`); ok {
			le = strings.Trim(v, `"`)
			continue
		}
		kept = append(kept, pair)
	}
	if len(kept) == 0 {
		return "", le
	}
	return "{" + strings.Join(kept, ",") + "}", le
}

// splitPairs splits k="v" pairs on commas outside quotes.
func splitPairs(s string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			b.WriteByte(c)
			i++
			b.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}

// quantile estimates q (0..1) by linear interpolation over the
// cumulative buckets, Prometheus histogram_quantile style.
func (h *histo) quantile(q float64) float64 {
	return histogramQuantile(h.bounds, h.counts, h.inf, q)
}

// printFamilies renders the scraped families as an aligned table:
// counters and gauges one line per series, histograms as
// count/mean/p50/p99 summaries.
func printFamilies(w io.Writer, fams map[string]*expoFamily, match string) error {
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	shown := 0
	for _, name := range names {
		if match != "" && !strings.Contains(name, match) {
			continue
		}
		f := fams[name]
		for _, s := range f.samples {
			fmt.Fprintf(tw, "%s%s\t%s\t%s\n", name, s.labels, f.typ, formatValue(s.value))
			shown++
		}
		// Only *_seconds histograms get time units; chain/hop
		// histograms are unitless counts.
		unit := formatValue
		if strings.HasSuffix(name, "_seconds") {
			unit = formatSeconds
		}
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			h := f.hists[key]
			mean := 0.0
			if h.count > 0 {
				mean = h.sum / h.count
			}
			fmt.Fprintf(tw, "%s%s\thistogram\tcount=%s mean=%s p50=%s p99=%s\n",
				name, key, formatValue(h.count), unit(mean),
				unit(h.quantile(0.50)), unit(h.quantile(0.99)))
			shown++
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if shown == 0 {
		fmt.Fprintln(w, "(no metrics matched)")
	}
	return nil
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// formatSeconds renders a seconds quantity with a readable unit.
func formatSeconds(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.1fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.3fs", v)
	}
}
