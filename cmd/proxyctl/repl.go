package main

// Replication control-plane subcommands: promote a standby after the
// primary dies, and inspect any replication node's status.

import (
	"flag"
	"fmt"
	"time"

	"proxykit/internal/repl"
	"proxykit/internal/transport"
)

func cmdPromote(args []string) error {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	addr := fs.String("addr", "", "standby's RPC address to promote")
	fence := fs.String("fence", "", "old primary's RPC address to fence with the new term (best-effort; a dead primary is fine)")
	timeout := fs.Duration("timeout", 5*time.Second, "dial/RPC timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	tc, err := transport.DialTCP(*addr, *timeout)
	if err != nil {
		return err
	}
	defer tc.Close()
	rc := repl.NewClient(tc)
	newTerm, err := rc.Promote()
	if err != nil {
		return err
	}
	st, err := rc.Status()
	if err != nil {
		return err
	}
	fmt.Printf("promoted %s: now %s at term %d (lastSeq %d)\n",
		*addr, st.Role, newTerm, st.LastSeq)
	if *fence != "" {
		// Best-effort: the usual reason for promoting is that the old
		// primary is dead, in which case fencing it now is impossible —
		// its persisted term is stale and any pull or promote it serves
		// after restart will be refused by term comparison anyway.
		ftc, err := transport.DialTCP(*fence, *timeout)
		if err != nil {
			fmt.Printf("warning: could not reach old primary %s to fence it: %v\n", *fence, err)
			return nil
		}
		defer ftc.Close()
		if _, err := repl.NewClient(ftc).Fence(newTerm); err != nil {
			fmt.Printf("warning: fence %s failed: %v\n", *fence, err)
			return nil
		}
		fmt.Printf("fenced old primary %s at term %d\n", *fence, newTerm)
	}
	return nil
}

func cmdReplStatus(args []string) error {
	fs := flag.NewFlagSet("repl-status", flag.ExitOnError)
	addr := fs.String("addr", "", "replication node's RPC address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial/RPC timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	tc, err := transport.DialTCP(*addr, *timeout)
	if err != nil {
		return err
	}
	defer tc.Close()
	st, err := repl.NewClient(tc).Status()
	if err != nil {
		return err
	}
	fmt.Printf("%s: role=%s term=%d lastSeq=%d snapSeq=%d\n",
		*addr, st.Role, st.Term, st.LastSeq, st.SnapSeq)
	return nil
}
