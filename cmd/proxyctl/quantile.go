package main

// histogramQuantile estimates the q-th quantile (0..1) of a cumulative
// Prometheus-style histogram by linear interpolation within the bucket
// holding the rank, histogram_quantile style. bounds are the finite
// upper bounds in ascending order, counts the cumulative counts
// parallel to them, and inf the +Inf bucket's cumulative count. The
// total observation count is taken from the +Inf bucket when present,
// falling back to the last finite bucket (scrapes that omit the +Inf
// series must not zero every estimate).
func histogramQuantile(bounds, counts []float64, inf float64, q float64) float64 {
	total := inf
	if n := len(counts); n > 0 && counts[n-1] > total {
		total = counts[n-1]
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	prevBound, prevCount := 0.0, 0.0
	for i, c := range counts {
		if c >= rank {
			width := bounds[i] - prevBound
			inBucket := c - prevCount
			if inBucket == 0 {
				return bounds[i]
			}
			return prevBound + width*(rank-prevCount)/inBucket
		}
		prevBound, prevCount = bounds[i], c
	}
	// The rank falls in the +Inf bucket; clamp to the largest finite
	// bound rather than inventing an upper edge.
	return bounds[len(bounds)-1]
}
