// Command proxyctl is the client for a proxykit deployment: it creates
// identities, grants and cascades restricted proxies, obtains proxies
// from authorization and group servers, and presents proxies to
// end-servers.
//
//	proxyctl keygen      -state ./state -me alice
//	proxyctl grant       -state ./state -me alice -out cap.json \
//	                     -object /shared/doc -ops read -lifetime 1h
//	proxyctl cascade     -state ./state -me alice -in cap.json -out narrower.json \
//	                     -quota pages:10
//	proxyctl group-grant -state ./state -me bob -server 127.0.0.1:8091 \
//	                     -groups staff -out group.json
//	proxyctl authz-grant -state ./state -me bob -server 127.0.0.1:8090 \
//	                     -end-server file/srv1@EXAMPLE.ORG -out authz.json \
//	                     -group-proxy group.json
//	proxyctl request     -state ./state -me bob -server 127.0.0.1:8093 \
//	                     -object /shared/doc -op read -proxy authz.json
//	proxyctl balance     -state ./state -me carol -server 127.0.0.1:8092 \
//	                     -account carol -currency dollars
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"proxykit/internal/authz"
	"proxykit/internal/logging"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
	"proxykit/internal/soak"
	"proxykit/internal/statefile"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

func main() {
	// A soak child process re-execs this binary; the env gate turns it
	// into the child bank before any flag parsing.
	soak.MaybeRunChild()
	var logOpts logging.Options
	global := flag.NewFlagSet("proxyctl", flag.ExitOnError)
	global.Usage = usage
	logOpts.RegisterFlags(global)
	_ = global.Parse(os.Args[1:]) // ExitOnError
	if _, err := logOpts.Setup(nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rest := global.Args()
	if len(rest) < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := rest[0], rest[1:]
	var err error
	switch cmd {
	case "keygen":
		err = cmdKeygen(args)
	case "grant":
		err = cmdGrant(args)
	case "cascade":
		err = cmdCascade(args)
	case "group-grant":
		err = cmdGroupGrant(args)
	case "authz-grant":
		err = cmdAuthzGrant(args)
	case "request":
		err = cmdRequest(args)
	case "balance":
		err = cmdBalance(args)
	case "statement":
		err = cmdStatement(args)
	case "metrics":
		err = cmdMetrics(args)
	case "audit":
		err = cmdAudit(args)
	case "trace":
		err = cmdTrace(args)
	case "slo":
		err = cmdSLO(args)
	case "gateway":
		err = cmdGateway(args)
	case "soak":
		err = cmdSoak(args)
	case "promote":
		err = cmdPromote(args)
	case "repl-status":
		err = cmdReplStatus(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		slog.Error(cmd+" failed", "err", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: proxyctl [-log-level L] [-log-format F] <command> [flags]

commands:
  keygen       create an identity and register it in the directory
  grant        create a restricted proxy (capability or delegate)
  cascade      add restrictions to an existing proxy
  group-grant  obtain a group-membership proxy from a group server
  authz-grant  obtain an authorization proxy from an authorization server
  request      present proxies to an end-server and perform an operation
  balance      read an account balance from an accounting server
  statement    print an account's transaction history
  metrics      scrape and pretty-print a daemon's /metrics and /healthz
  audit        tail, query, or verify a daemon's audit journal
  trace        assemble and render one distributed trace across daemons
  slo          report latency-objective compliance and error budgets
  gateway      inspect a gatewayd: sessions, token map, proxy cache
  soak         run the continuous mixed-scenario storm with invariant verification
  promote      promote a standby daemon to primary (fenced failover)
  repl-status  print a daemon's replication role, term, and WAL position`)
}

// commonFlags registers the flags every subcommand shares.
type commonFlags struct {
	state *string
	me    *string
	realm *string
}

func common(fs *flag.FlagSet) commonFlags {
	return commonFlags{
		state: fs.String("state", "./state", "shared state directory"),
		me:    fs.String("me", "", "principal name acting"),
		realm: fs.String("realm", "EXAMPLE.ORG", "realm name"),
	}
}

func (c commonFlags) identity() (*pubkey.Identity, error) {
	if *c.me == "" {
		return nil, fmt.Errorf("-me is required")
	}
	return statefile.LoadIdentity(*c.state, principal.New(*c.me, *c.realm))
}

func cmdKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	c := common(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *c.me == "" {
		return fmt.Errorf("-me is required")
	}
	id := principal.New(*c.me, *c.realm)
	ident, err := statefile.CreateIdentity(*c.state, id)
	if err != nil {
		return err
	}
	fmt.Printf("created %s (key %s), registered in %s/directory.json\n",
		ident.ID, ident.Public().KeyID(), *c.state)
	return nil
}

// restrictionFlags builds a restriction set from repeated flags.
type restrictionFlags struct {
	object    *string
	ops       *string
	grantee   *string
	issuedFor *string
	quota     *string
}

func restrictions(fs *flag.FlagSet) restrictionFlags {
	return restrictionFlags{
		object:    fs.String("object", "", "authorized object"),
		ops:       fs.String("ops", "", "comma-separated authorized operations"),
		grantee:   fs.String("grantee", "", "comma-separated grantee principals (delegate proxy)"),
		issuedFor: fs.String("issued-for", "", "comma-separated accepting servers"),
		quota:     fs.String("quota", "", "currency:limit quota"),
	}
}

func (rf restrictionFlags) build() (restrict.Set, error) {
	var rs restrict.Set
	if *rf.object != "" {
		entry := restrict.AuthorizedEntry{Object: *rf.object}
		if *rf.ops != "" {
			entry.Ops = strings.Split(*rf.ops, ",")
		}
		rs = append(rs, restrict.Authorized{Entries: []restrict.AuthorizedEntry{entry}})
	}
	if *rf.grantee != "" {
		var ids []principal.ID
		for _, g := range strings.Split(*rf.grantee, ",") {
			id, err := principal.Parse(g)
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		rs = append(rs, restrict.Grantee{Principals: ids})
	}
	if *rf.issuedFor != "" {
		var ids []principal.ID
		for _, s := range strings.Split(*rf.issuedFor, ",") {
			id, err := principal.Parse(s)
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		rs = append(rs, restrict.IssuedFor{Servers: ids})
	}
	if *rf.quota != "" {
		currency, limitStr, ok := strings.Cut(*rf.quota, ":")
		if !ok {
			return nil, fmt.Errorf("quota must be currency:limit")
		}
		limit, err := strconv.ParseInt(limitStr, 10, 64)
		if err != nil {
			return nil, err
		}
		rs = append(rs, restrict.Quota{Currency: currency, Limit: limit})
	}
	return rs, nil
}

func cmdGrant(args []string) error {
	fs := flag.NewFlagSet("grant", flag.ExitOnError)
	c := common(fs)
	rf := restrictions(fs)
	out := fs.String("out", "proxy.json", "output proxy file")
	lifetime := fs.Duration("lifetime", time.Hour, "proxy lifetime")
	if err := fs.Parse(args); err != nil {
		return err
	}
	me, err := c.identity()
	if err != nil {
		return err
	}
	rs, err := rf.build()
	if err != nil {
		return err
	}
	p, err := proxy.Grant(proxy.GrantParams{
		Grantor:       me.ID,
		GrantorSigner: me.Signer(),
		Restrictions:  rs,
		Lifetime:      *lifetime,
		Mode:          proxy.ModePublicKey,
	})
	if err != nil {
		return err
	}
	if err := statefile.SaveProxy(*out, p); err != nil {
		return err
	}
	fmt.Printf("granted proxy: %s\nwritten to %s\n", p.Restrictions(), *out)
	return nil
}

func cmdCascade(args []string) error {
	fs := flag.NewFlagSet("cascade", flag.ExitOnError)
	c := common(fs)
	rf := restrictions(fs)
	in := fs.String("in", "proxy.json", "input proxy file")
	out := fs.String("out", "proxy2.json", "output proxy file")
	lifetime := fs.Duration("lifetime", time.Hour, "new link lifetime")
	delegate := fs.Bool("delegate", false, "sign with own identity (delegate cascade)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := statefile.LoadProxy(*in)
	if err != nil {
		return err
	}
	rs, err := rf.build()
	if err != nil {
		return err
	}
	cp := proxy.CascadeParams{Added: rs, Lifetime: *lifetime, Mode: proxy.ModePublicKey}
	var next *proxy.Proxy
	if *delegate {
		me, err := c.identity()
		if err != nil {
			return err
		}
		next, err = p.CascadeDelegate(me.ID, me.Signer(), cp)
		if err != nil {
			return err
		}
	} else {
		next, err = p.CascadeBearer(cp)
		if err != nil {
			return err
		}
	}
	if err := statefile.SaveProxy(*out, next); err != nil {
		return err
	}
	fmt.Printf("cascaded proxy (%d links): %s\nwritten to %s\n",
		len(next.Certs), next.Restrictions(), *out)
	return nil
}

func cmdGroupGrant(args []string) error {
	fs := flag.NewFlagSet("group-grant", flag.ExitOnError)
	c := common(fs)
	server := fs.String("server", "127.0.0.1:8091", "group server address")
	groups := fs.String("groups", "", "comma-separated group names")
	out := fs.String("out", "group.json", "output proxy file")
	lifetime := fs.Duration("lifetime", time.Hour, "proxy lifetime")
	if err := fs.Parse(args); err != nil {
		return err
	}
	me, err := c.identity()
	if err != nil {
		return err
	}
	tc, err := transport.DialTCP(*server, 5*time.Second)
	if err != nil {
		return err
	}
	defer tc.Close()
	gc := svc.NewGroupClient(tc, me, nil)
	p, err := gc.Grant(svc.GroupGrantParams{
		Groups:   strings.Split(*groups, ","),
		Lifetime: *lifetime,
		Delegate: true,
	})
	if err != nil {
		return err
	}
	if err := statefile.SaveProxy(*out, p); err != nil {
		return err
	}
	fmt.Printf("group proxy: %s\nwritten to %s\n", p.Restrictions(), *out)
	return nil
}

func cmdAuthzGrant(args []string) error {
	fs := flag.NewFlagSet("authz-grant", flag.ExitOnError)
	c := common(fs)
	server := fs.String("server", "127.0.0.1:8090", "authorization server address")
	endServer := fs.String("end-server", "", "end-server principal the proxy targets")
	object := fs.String("object", "", "specific object (empty = everything allowed)")
	ops := fs.String("ops", "", "comma-separated operations")
	groupProxies := fs.String("group-proxy", "", "comma-separated group proxy files")
	out := fs.String("out", "authz.json", "output proxy file")
	lifetime := fs.Duration("lifetime", time.Hour, "proxy lifetime")
	if err := fs.Parse(args); err != nil {
		return err
	}
	me, err := c.identity()
	if err != nil {
		return err
	}
	target, err := principal.Parse(*endServer)
	if err != nil {
		return fmt.Errorf("-end-server: %w", err)
	}
	var objs []authz.RequestedObject
	if *object != "" {
		ro := authz.RequestedObject{Object: *object}
		if *ops != "" {
			ro.Ops = strings.Split(*ops, ",")
		}
		objs = append(objs, ro)
	}
	var pres []*proxy.Presentation
	if *groupProxies != "" {
		for _, f := range strings.Split(*groupProxies, ",") {
			gp, err := statefile.LoadProxy(f)
			if err != nil {
				return err
			}
			pres = append(pres, gp.PresentDelegate())
		}
	}
	tc, err := transport.DialTCP(*server, 5*time.Second)
	if err != nil {
		return err
	}
	defer tc.Close()
	ac := svc.NewAuthzClient(tc, me, nil)
	p, err := ac.Grant(svc.GrantParams{
		EndServer:    target,
		Objects:      objs,
		Lifetime:     *lifetime,
		GroupProxies: pres,
	})
	if err != nil {
		return err
	}
	if err := statefile.SaveProxy(*out, p); err != nil {
		return err
	}
	fmt.Printf("authorization proxy: %s\nwritten to %s\n", p.Restrictions(), *out)
	return nil
}

func cmdRequest(args []string) error {
	fs := flag.NewFlagSet("request", flag.ExitOnError)
	c := common(fs)
	server := fs.String("server", "127.0.0.1:8093", "end-server address")
	object := fs.String("object", "", "object to operate on")
	op := fs.String("op", "read", "operation")
	proxyFiles := fs.String("proxy", "", "comma-separated proxy files to present")
	if err := fs.Parse(args); err != nil {
		return err
	}
	me, err := c.identity()
	if err != nil {
		return err
	}
	tc, err := transport.DialTCP(*server, 5*time.Second)
	if err != nil {
		return err
	}
	defer tc.Close()
	ec := svc.NewEndClient(tc, me, nil)

	var proxies []*proxy.Proxy
	needChallenge := false
	if *proxyFiles != "" {
		for _, f := range strings.Split(*proxyFiles, ",") {
			p, err := statefile.LoadProxy(f)
			if err != nil {
				return err
			}
			proxies = append(proxies, p)
			if p.Key != nil {
				needChallenge = true
			}
		}
	}
	var challenge []byte
	if needChallenge {
		if challenge, err = ec.Challenge(); err != nil {
			return err
		}
	}
	var pres []*proxy.Presentation
	for _, p := range proxies {
		if p.Key != nil {
			// Bearer presentation: the proof is bound to the end-server
			// identity recorded in the proxy's issued-for restriction if
			// present; otherwise ask the user via -end-server-id.
			target, ok := issuedForTarget(p)
			if !ok {
				return fmt.Errorf("proxy has a key but no issued-for restriction; cannot determine end-server identity for the proof")
			}
			pr, err := p.Present(challenge, target)
			if err != nil {
				return err
			}
			pres = append(pres, pr)
		} else {
			pres = append(pres, p.PresentDelegate())
		}
	}
	dec, err := ec.Request(svc.RequestParams{
		Object:    *object,
		Op:        *op,
		Challenge: challenge,
		Proxies:   pres,
	})
	if err != nil {
		return err
	}
	fmt.Printf("GRANTED via %s (proxy=%v)", dec.Via, dec.ViaProxy)
	if len(dec.Trail) > 0 {
		fmt.Printf(" trail=%v", dec.Trail)
	}
	fmt.Println()
	return nil
}

// issuedForTarget extracts a single-target issued-for restriction.
func issuedForTarget(p *proxy.Proxy) (principal.ID, bool) {
	for _, r := range p.Restrictions() {
		if f, ok := r.(restrict.IssuedFor); ok && len(f.Servers) == 1 {
			return f.Servers[0], true
		}
	}
	return principal.ID{}, false
}

func cmdBalance(args []string) error {
	fs := flag.NewFlagSet("balance", flag.ExitOnError)
	c := common(fs)
	server := fs.String("server", "127.0.0.1:8092", "accounting server address")
	account := fs.String("account", "", "account name")
	currency := fs.String("currency", "dollars", "currency")
	if err := fs.Parse(args); err != nil {
		return err
	}
	me, err := c.identity()
	if err != nil {
		return err
	}
	tc, err := transport.DialTCP(*server, 5*time.Second)
	if err != nil {
		return err
	}
	defer tc.Close()
	ac := svc.NewAcctClient(tc, me, nil)
	bal, err := ac.Balance(*account, *currency)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d %s\n", *account, bal, *currency)
	return nil
}

func cmdStatement(args []string) error {
	fs := flag.NewFlagSet("statement", flag.ExitOnError)
	c := common(fs)
	server := fs.String("server", "127.0.0.1:8092", "accounting server address")
	account := fs.String("account", "", "account name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	me, err := c.identity()
	if err != nil {
		return err
	}
	tc, err := transport.DialTCP(*server, 5*time.Second)
	if err != nil {
		return err
	}
	defer tc.Close()
	ac := svc.NewAcctClient(tc, me, nil)
	txs, err := ac.Statement(*account)
	if err != nil {
		return err
	}
	for _, tx := range txs {
		fmt.Println(tx)
	}
	fmt.Printf("(%d transactions)\n", len(txs))
	return nil
}
