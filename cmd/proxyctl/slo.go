package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"strings"
	"time"

	"proxykit/internal/obs"
)

// sloDoc is the /slo response document.
type sloDoc struct {
	Objectives []obs.ObjectiveReport `json:"objectives"`
}

// fetchSLO reads one daemon's /slo compliance document.
func fetchSLO(addr string) (*sloDoc, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(fmt.Sprintf("http://%s/slo", addr))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("slo: %s returned %s", addr, resp.Status)
	}
	var doc sloDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("slo: decode %s: %w", addr, err)
	}
	return &doc, nil
}

// cmdSLO scrapes /slo from every listed daemon and reports latency-
// objective compliance: target vs observed quantile, burn counts,
// remaining error budget, and exemplar trace IDs for breached
// objectives (feed those to `proxyctl trace show`).
func cmdSLO(args []string) error {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	addrs := fs.String("addrs", "127.0.0.1:9090", "comma-separated daemon metrics addresses to scrape")
	strict := fs.Bool("strict", false, "exit non-zero when any objective's error budget is exhausted")
	if err := fs.Parse(args); err != nil {
		return err
	}
	blown := 0
	for _, addr := range strings.Split(*addrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		doc, err := fetchSLO(addr)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", addr)
		if len(doc.Objectives) == 0 {
			fmt.Println("  (no objectives armed; start the daemon with -slo)")
			continue
		}
		for _, o := range doc.Objectives {
			status := "OK"
			if !o.Compliant {
				status = "BUDGET EXHAUSTED"
				blown++
			}
			fmt.Printf("  %-28s p%g < %-8s observed=%-10s %d/%d over target  budget=%s  %s\n",
				o.Method, o.Quantile*100, o.TargetText,
				time.Duration(o.ObservedQuantileNs).Round(time.Microsecond),
				o.Breaches, o.Total, fmtPpm(o.BudgetRemainingPpm), status)
			if !o.Compliant && len(o.ExemplarTraceIDs) > 0 {
				fmt.Printf("    exemplar traces: %s\n", strings.Join(o.ExemplarTraceIDs, " "))
			}
		}
	}
	if *strict && blown > 0 {
		return fmt.Errorf("slo: %d objective(s) over budget", blown)
	}
	return nil
}

// fmtPpm renders a parts-per-million budget as a percentage.
func fmtPpm(ppm int64) string {
	return fmt.Sprintf("%.1f%%", float64(ppm)/10_000)
}
