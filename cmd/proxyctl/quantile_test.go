package main

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestHistogramQuantileEmpty(t *testing.T) {
	if got := histogramQuantile(nil, nil, 0, 0.5); got != 0 {
		t.Errorf("empty histogram: got %v, want 0", got)
	}
	if got := histogramQuantile([]float64{1, 2}, []float64{0, 0}, 0, 0.99); got != 0 {
		t.Errorf("zero-count histogram: got %v, want 0", got)
	}
}

func TestHistogramQuantileSingleBucketMass(t *testing.T) {
	// All four observations land in (0, 1]; the median interpolates to
	// the middle of the bucket.
	if got := histogramQuantile([]float64{1}, []float64{4}, 4, 0.5); !almost(got, 0.5) {
		t.Errorf("p50 = %v, want 0.5", got)
	}
	if got := histogramQuantile([]float64{1}, []float64{4}, 4, 1); !almost(got, 1) {
		t.Errorf("p100 = %v, want 1", got)
	}
}

func TestHistogramQuantileMissingInfBucket(t *testing.T) {
	// A scrape without the +Inf series must still estimate from the
	// finite buckets (the old implementation returned 0 here).
	if got := histogramQuantile([]float64{1, 2}, []float64{3, 6}, 0, 0.5); !almost(got, 1) {
		t.Errorf("p50 without +Inf = %v, want 1", got)
	}
}

func TestHistogramQuantileInterpolationAtBucketEdges(t *testing.T) {
	bounds := []float64{0.1, 0.5, 1}
	counts := []float64{10, 90, 100}
	// p50: rank 50 inside the second bucket, 40/80 of the way through.
	if got := histogramQuantile(bounds, counts, 100, 0.5); !almost(got, 0.3) {
		t.Errorf("p50 = %v, want 0.3", got)
	}
	// p99: rank 99 inside the third bucket, 9/10 of the way through.
	if got := histogramQuantile(bounds, counts, 100, 0.99); !almost(got, 0.95) {
		t.Errorf("p99 = %v, want 0.95", got)
	}
	// p10: rank 10 lands exactly on the first bucket's edge.
	if got := histogramQuantile(bounds, counts, 100, 0.1); !almost(got, 0.1) {
		t.Errorf("p10 = %v, want 0.1", got)
	}
}

func TestHistogramQuantileEmptyBucketReturnsBound(t *testing.T) {
	// q=0 lands in an empty first bucket; interpolation would divide by
	// zero, so the bucket bound is returned.
	bounds := []float64{1, 2}
	counts := []float64{0, 5}
	if got := histogramQuantile(bounds, counts, 5, 0); !almost(got, 1) {
		t.Errorf("p0 = %v, want 1", got)
	}
	// A rank exactly on a bucket's cumulative count resolves to that
	// bucket's upper bound, not the next bucket.
	if got := histogramQuantile([]float64{1, 2, 4}, []float64{5, 5, 10}, 10, 0.5); !almost(got, 1) {
		t.Errorf("p50 = %v, want 1", got)
	}
}

func TestHistogramQuantileMassBeyondFiniteBuckets(t *testing.T) {
	// Most observations exceeded every finite bound; the estimate
	// clamps to the largest finite bound.
	if got := histogramQuantile([]float64{1}, []float64{1}, 10, 0.99); !almost(got, 1) {
		t.Errorf("p99 = %v, want 1", got)
	}
}

func TestHistogramQuantileClampsQ(t *testing.T) {
	bounds := []float64{1, 2}
	counts := []float64{5, 10}
	if got := histogramQuantile(bounds, counts, 10, -1); !almost(got, 0) {
		t.Errorf("q<0 = %v, want 0", got)
	}
	if got := histogramQuantile(bounds, counts, 10, 2); !almost(got, 2) {
		t.Errorf("q>1 = %v, want 2", got)
	}
}
