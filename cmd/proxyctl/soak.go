package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"proxykit/internal/soak"
)

// cmdSoak runs the soak storm (internal/soak): a seed-deterministic
// mixed-scenario simulation over a fresh in-process multi-realm
// topology with fault injection, child-bank SIGKILL crash/recovery,
// and the always-on invariant verifier. Exits non-zero when any
// invariant breaks, printing the seed and a reproduction command.
func cmdSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "schedule/fault/crash seed")
	dur := fs.Duration("time", 60*time.Second, "storm duration")
	ops := fs.Int("ops", 0, "stop after N ops (0: duration only)")
	workers := fs.Int("workers", 8, "concurrent workers")
	principals := fs.Int("principals", 8, "simulated principals")
	verifyEvery := fs.Duration("verify-interval", 2*time.Second, "verifier cadence")
	crashEvery := fs.Duration("crash-interval", 0, "child-bank crash cadence (0: auto)")
	drop := fs.Float64("fault-drop", 0.25, "clearing-hop drop probability")
	dup := fs.Float64("fault-dup", 0.10, "clearing-hop duplicate probability")
	noChild := fs.Bool("no-child", false, "disable the child-process bank")
	failover := fs.Bool("failover", true, "run a hot standby of the child bank and promote it under load on every crash cycle")
	doubleCredit := fs.Bool("inject-double-credit", false, "inject an unaccounted credit the verifier must catch")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep, err := soak.Run(soak.Config{
		Seed:               *seed,
		Duration:           *dur,
		MaxOps:             *ops,
		Workers:            *workers,
		Principals:         *principals,
		VerifyInterval:     *verifyEvery,
		CrashInterval:      *crashEvery,
		FaultDrop:          *drop,
		FaultDup:           *dup,
		NoChild:            *noChild,
		Failover:           *failover,
		InjectDoubleCredit: *doubleCredit,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if rep != nil {
		names := make([]string, 0, len(rep.Ops))
		for name := range rep.Ops {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("soak: seed=%d elapsed=%s verifyPasses=%d crashes=%d recoveries=%d failovers=%d downtimeErrors=%d\n",
			rep.Seed, rep.Elapsed.Round(time.Millisecond), rep.VerifyPasses,
			rep.Crashes, rep.Recoveries, rep.Failovers, rep.DowntimeErrors)
		for _, name := range names {
			fmt.Printf("soak:   %-10s ok=%d err=%d\n", name, rep.Ops[name], rep.Errors[name])
		}
	}
	return err
}
