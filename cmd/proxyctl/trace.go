package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"proxykit/internal/obs"
)

// cmdTrace dispatches the trace subcommands: show assembles one
// distributed trace from every daemon's /traces endpoint and renders
// the span tree; recent lists the trace IDs a daemon has seen.
func cmdTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: proxyctl trace <show|recent> [flags]")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "show":
		return cmdTraceShow(rest)
	case "recent":
		return cmdTraceRecent(rest)
	default:
		return fmt.Errorf("trace: unknown subcommand %q (want show or recent)", sub)
	}
}

// tracePage is the /traces response document.
type tracePage struct {
	Total  uint64     `json:"total"`
	Oldest uint64     `json:"oldest"`
	Cursor uint64     `json:"cursor"`
	Spans  []obs.Span `json:"spans"`
}

// fetchTraces reads one /traces page from a daemon's metrics listener.
func fetchTraces(addr string, since uint64, limit int, traceID string) (*tracePage, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	url := fmt.Sprintf("http://%s/traces?since=%d", addr, since)
	if limit > 0 {
		url += fmt.Sprintf("&limit=%d", limit)
	}
	if traceID != "" {
		url += "&trace=" + traceID
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("traces: %s returned %s", addr, resp.Status)
	}
	var page tracePage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, fmt.Errorf("traces: decode %s: %w", addr, err)
	}
	return &page, nil
}

// traceNode is one collected span plus the daemon it came from.
type traceNode struct {
	span obs.Span
	addr string
}

func cmdTraceShow(args []string) error {
	// The trace ID is positional: proxyctl trace show <id> -addrs ...
	var id string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		id, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("trace show", flag.ExitOnError)
	addrs := fs.String("addrs", "127.0.0.1:9090", "comma-separated daemon metrics addresses to scrape (every -metrics-addr in the deployment)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if id == "" && fs.NArg() > 0 {
		id = fs.Arg(0)
	}
	if id == "" {
		return fmt.Errorf("usage: proxyctl trace show <trace-id> -addrs host:port,...")
	}

	var nodes []traceNode
	var errs []string
	for _, addr := range strings.Split(*addrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		page, err := fetchTraces(addr, 0, 0, id)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		for _, s := range page.Spans {
			nodes = append(nodes, traceNode{span: s, addr: addr})
		}
	}
	for _, e := range errs {
		fmt.Printf("warning: %s\n", e)
	}
	if len(nodes) == 0 {
		return fmt.Errorf("trace %s: no spans found on %s (evicted from the rings? check -trace-file sinks)", id, *addrs)
	}
	printTraceTree(id, nodes)
	return nil
}

// printTraceTree joins the collected spans by span ID and renders the
// parent/child tree with per-hop durations. Spans whose parent was not
// collected (e.g. a daemon without -metrics-addr, or evicted from its
// ring) are rendered as additional roots, flagged as orphaned.
func printTraceTree(id string, nodes []traceNode) {
	daemons := map[string]bool{}
	byID := map[string]int{}
	for i, n := range nodes {
		daemons[n.addr] = true
		byID[n.span.SpanID] = i
	}
	children := map[string][]int{}
	var roots, orphans []int
	for i, n := range nodes {
		switch {
		case n.span.Parent == "":
			roots = append(roots, i)
		default:
			if _, ok := byID[n.span.Parent]; ok {
				children[n.span.Parent] = append(children[n.span.Parent], i)
			} else {
				orphans = append(orphans, i)
			}
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return nodes[idx[a]].span.Start.Before(nodes[idx[b]].span.Start) })
	}
	byStart(roots)
	byStart(orphans)
	for _, idx := range children {
		byStart(idx)
	}

	fmt.Printf("trace %s: %d spans from %d daemons\n", id, len(nodes), len(daemons))
	var render func(i int, prefix string, last bool)
	render = func(i int, prefix string, last bool) {
		branch, indent := "├─ ", "│  "
		if last {
			branch, indent = "└─ ", "   "
		}
		fmt.Printf("%s%s%s\n", prefix, branch, spanLine(nodes[i]))
		kids := children[nodes[i].span.SpanID]
		for k, c := range kids {
			render(c, prefix+indent, k == len(kids)-1)
		}
	}
	for _, r := range roots {
		fmt.Printf("%s\n", spanLine(nodes[r]))
		kids := children[nodes[r].span.SpanID]
		for k, c := range kids {
			render(c, "", k == len(kids)-1)
		}
	}
	for _, o := range orphans {
		fmt.Printf("(parent %s not collected)\n", short(nodes[o].span.Parent))
		fmt.Printf("%s\n", spanLine(nodes[o]))
		kids := children[nodes[o].span.SpanID]
		for k, c := range kids {
			render(c, "", k == len(kids)-1)
		}
	}
}

// spanLine renders one span: method, kind, source daemon, duration,
// and failure/annotation.
func spanLine(n traceNode) string {
	s := fmt.Sprintf("%s  [%s @%s]  %s", n.span.Method, n.span.Kind, n.addr, n.span.Duration.Round(time.Microsecond))
	if n.span.Err != "" {
		s += fmt.Sprintf("  ERR: %s", n.span.Err)
	}
	if n.span.Note != "" {
		s += fmt.Sprintf("  (%s)", n.span.Note)
	}
	return s
}

func cmdTraceRecent(args []string) error {
	fs := flag.NewFlagSet("trace recent", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "daemon metrics address (host:port of its -metrics-addr)")
	since := fs.Uint64("since", 0, "return spans with seq greater than this cursor")
	limit := fs.Int("limit", 0, "maximum spans to fetch (0 = all retained)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	page, err := fetchTraces(*addr, *since, *limit, "")
	if err != nil {
		return err
	}
	// One line per trace, newest first, with its span count and root
	// method when the root is retained.
	type agg struct {
		count int
		last  obs.Span
	}
	order := []string{}
	traces := map[string]*agg{}
	for _, s := range page.Spans {
		a := traces[s.TraceID]
		if a == nil {
			a = &agg{}
			traces[s.TraceID] = a
			order = append(order, s.TraceID)
		}
		a.count++
		a.last = s
	}
	for i := len(order) - 1; i >= 0; i-- {
		tid := order[i]
		a := traces[tid]
		fmt.Printf("%s  %d span(s)  latest=%s %s\n", tid, a.count, a.last.Method, a.last.Duration.Round(time.Microsecond))
	}
	fmt.Printf("(%d spans, %d traces, cursor=%d, oldest=%d, total=%d)\n",
		len(page.Spans), len(traces), page.Cursor, page.Oldest, page.Total)
	return nil
}
