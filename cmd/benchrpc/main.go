// Command benchrpc measures the two PR-4 performance claims and emits
// a machine-readable report:
//
//  1. RPC throughput: a serialized client (one call in flight) versus
//     the multiplexed client (many calls in flight on one connection)
//     against a TCP server whose handler simulates a fixed backend
//     latency. Sleeping — not burning CPU — keeps the comparison
//     meaningful on single-core machines: serialization is limited by
//     round trips regardless of core count.
//
//  2. Authorization latency: the full end-server bearer authorize path
//     (fresh challenge, possession proof, replay check, ACL) cold
//     versus with a warm verified-chain cache.
//
//     benchrpc -o BENCH_PR4.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/endserver"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
	"proxykit/internal/transport"
)

type rpcSide struct {
	Calls       int     `json:"calls"`
	Goroutines  int     `json:"goroutines"`
	Seconds     float64 `json:"seconds"`
	CallsPerSec float64 `json:"callsPerSec"`
}

type report struct {
	GOOS    string `json:"goos"`
	GOARCH  string `json:"goarch"`
	NumCPU  int    `json:"numCPU"`
	Backend string `json:"simulatedBackendLatency"`

	Serialized rpcSide `json:"serialized"`
	Concurrent rpcSide `json:"concurrent"`
	Speedup    float64 `json:"rpcThroughputSpeedup"`

	AuthorizeIters   int     `json:"authorizeIterations"`
	ColdNsPerOp      float64 `json:"authorizeColdNsPerOp"`
	WarmNsPerOp      float64 `json:"authorizeWarmNsPerOp"`
	AuthorizeSpeedup float64 `json:"authorizeWarmSpeedup"`
}

const (
	backendLatency = 2 * time.Millisecond
	benchRealm     = "BENCH.ORG"
)

func main() {
	out := flag.String("o", "BENCH_PR4.json", "output file (- for stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		log.Fatal(err)
	}
}

func run(out string) error {
	r := report{
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
		Backend: backendLatency.String(),
	}
	if err := measureRPC(&r); err != nil {
		return err
	}
	if err := measureAuthorize(&r); err != nil {
		return err
	}

	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("serialized   %7.0f calls/s (%d calls, 1 in flight)\n",
		r.Serialized.CallsPerSec, r.Serialized.Calls)
	fmt.Printf("multiplexed  %7.0f calls/s (%d calls, %d in flight)\n",
		r.Concurrent.CallsPerSec, r.Concurrent.Calls, r.Concurrent.Goroutines)
	fmt.Printf("rpc throughput speedup: %.1fx\n\n", r.Speedup)
	fmt.Printf("authorize cold %8.0f ns/op\n", r.ColdNsPerOp)
	fmt.Printf("authorize warm %8.0f ns/op (chain cache)\n", r.WarmNsPerOp)
	fmt.Printf("authorize speedup: %.2fx\n\nwrote %s\n", r.AuthorizeSpeedup, out)
	return nil
}

func measureRPC(r *report) error {
	mux := transport.NewMux()
	mux.Handle("bench.echo", func(_ context.Context, body []byte) ([]byte, error) {
		time.Sleep(backendLatency)
		return body, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := transport.NewTCPServer(l, mux)
	defer srv.Close()
	c, err := transport.DialTCP(srv.Addr().String(), 0)
	if err != nil {
		return err
	}
	defer c.Close()

	// Warm-up: establish the connection and page in both paths.
	for i := 0; i < 5; i++ {
		if _, err := c.Call("bench.echo", nil); err != nil {
			return err
		}
	}

	const serialCalls = 100
	start := time.Now()
	for i := 0; i < serialCalls; i++ {
		if _, err := c.Call("bench.echo", nil); err != nil {
			return err
		}
	}
	el := time.Since(start)
	r.Serialized = rpcSide{
		Calls: serialCalls, Goroutines: 1,
		Seconds: el.Seconds(), CallsPerSec: float64(serialCalls) / el.Seconds(),
	}

	const goroutines, perG = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	start = time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := c.Call("bench.echo", nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	el = time.Since(start)
	r.Concurrent = rpcSide{
		Calls: goroutines * perG, Goroutines: goroutines,
		Seconds: el.Seconds(), CallsPerSec: float64(goroutines*perG) / el.Seconds(),
	}
	r.Speedup = r.Concurrent.CallsPerSec / r.Serialized.CallsPerSec
	return nil
}

func measureAuthorize(r *report) error {
	dir := pubkey.NewDirectory()
	alice, err := pubkey.NewIdentity(principal.New("alice", benchRealm))
	if err != nil {
		return err
	}
	dir.RegisterIdentity(alice)
	fileID := principal.New("file", benchRealm)
	env := &proxy.VerifyEnv{MaxSkew: time.Minute, ResolveIdentity: dir.Resolver()}
	p, err := proxy.Grant(proxy.GrantParams{
		Grantor:       alice.ID,
		GrantorSigner: alice.Signer(),
		Restrictions:  restrict.Set{},
		Lifetime:      time.Hour,
		Mode:          proxy.ModePublicKey,
	})
	if err != nil {
		return err
	}

	const iters = 200
	r.AuthorizeIters = iters
	measure := func(cache *proxy.ChainCache) (float64, error) {
		srv := endserver.New(fileID, env, nil)
		if cache != nil {
			srv.SetChainCache(cache)
		}
		srv.SetACL("/doc", acl.New(acl.PrincipalEntry(alice.ID, "read")))
		authorize := func() error {
			ch, err := srv.Challenge()
			if err != nil {
				return err
			}
			pr, err := p.Present(ch, fileID)
			if err != nil {
				return err
			}
			_, err = srv.Authorize(&endserver.Request{
				Object: "/doc", Op: "read",
				Proxies: []*proxy.Presentation{pr}, Challenge: ch,
			})
			return err
		}
		// Warm-up (and cache warm when enabled).
		for i := 0; i < 3; i++ {
			if err := authorize(); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := authorize(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / iters, nil
	}

	if r.ColdNsPerOp, err = measure(nil); err != nil {
		return err
	}
	if r.WarmNsPerOp, err = measure(proxy.NewChainCache(16)); err != nil {
		return err
	}
	r.AuthorizeSpeedup = r.ColdNsPerOp / r.WarmNsPerOp
	return nil
}
