module proxykit

go 1.22
